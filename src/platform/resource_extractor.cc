#include "platform/resource_extractor.h"

#include <unordered_map>

#include "obs/metrics.h"
#include "obs/span.h"

namespace crowdex::platform {

ResourceExtractor::ResourceExtractor(const entity::KnowledgeBase* kb)
    : ResourceExtractor(kb, entity::AnnotatorOptions{}) {}

ResourceExtractor::ResourceExtractor(const entity::KnowledgeBase* kb,
                                     entity::AnnotatorOptions annotator_options)
    : annotator_(kb, annotator_options) {}

ResourceExtractor::ResourceExtractor(const entity::KnowledgeBase* kb,
                                     const ExtractorOptions& options)
    : pipeline_(options.pipeline),
      annotator_(kb, options.annotator),
      enrich_urls_(options.enrich_urls) {}

AnalyzedNode ResourceExtractor::AnalyzeText(const std::string& text) const {
  AnalyzedNode out;
  out.has_text = !text.empty();
  if (!out.has_text) return out;

  out.language = pipeline_.language_identifier().Identify(text);
  out.english = out.language == text::Language::kEnglish;
  if (!out.english) return out;

  // Entity recognition runs on unstemmed tokens (entity aliases are surface
  // forms), term extraction on the full pipeline output.
  std::vector<std::string> raw_tokens = pipeline_.tokenizer().Tokenize(text);
  std::vector<entity::Annotation> annotations = annotator_.Annotate(raw_tokens);

  std::unordered_map<entity::EntityId, index::DocEntity> merged;
  for (const auto& a : annotations) {
    index::DocEntity& slot = merged[a.entity];
    slot.entity = a.entity;
    slot.frequency += 1;
    slot.dscore = std::max(slot.dscore, a.dscore);
  }
  out.entities.reserve(merged.size());
  for (const auto& [id, e] : merged) out.entities.push_back(e);

  out.terms = pipeline_.ProcessTerms(text);
  return out;
}

AnalyzedNode ResourceExtractor::AnalyzeOneNode(const PlatformNetwork& network,
                                               const WebPageStore& web,
                                               FlakyApi* api, graph::NodeId n,
                                               bool* degraded) const {
  *degraded = false;
  std::string text = network.node_text[n];
  const std::string& url = network.node_url[n];
  if (!url.empty() && enrich_urls_) {
    // URL content extraction: append the linked page's main content. Dead
    // links (NotFound) degrade silently to the node's own text; transport-
    // level failures of the extraction API do the same but are counted as
    // degraded.
    Result<std::string> page =
        api != nullptr ? api->FetchUrl(web, url) : web.Fetch(url);
    if (page.ok()) {
      if (!text.empty()) text += ' ';
      text += page.value();
    } else if (page.status().code() != StatusCode::kNotFound) {
      *degraded = true;
    }
  }
  AnalyzedNode analyzed = AnalyzeText(text);
  analyzed.node = n;
  return analyzed;
}

AnalyzedCorpus ResourceExtractor::AnalyzeNetwork(
    const PlatformNetwork& network, const WebPageStore& web,
    const NetworkAnalyzeOptions& options) const {
  AnalyzedCorpus corpus;
  corpus.platform = network.platform;
  const size_t node_count = network.graph.node_count();
  obs::StageTimer timer(options.metrics, "extract");

  // The fault-injecting API draws from one ordered fault stream, so its
  // path must consume nodes strictly in id order (single-threaded).
  const bool parallel = options.api == nullptr && options.pool != nullptr &&
                        options.pool->thread_count() > 1 && node_count > 1;

  corpus.nodes.resize(node_count);
  std::vector<uint8_t> degraded_flags(node_count, 0);
  if (parallel) {
    // Each node's analysis is a pure function of that node (the extractor
    // and page store are immutable), so chunks write disjoint pre-sized
    // slots and the result is identical to the sequential loop below.
    // Chunks of >= 32 nodes amortize the dispatch cost of short texts.
    // The body is infallible, so the returned status can only be OK.
    Status analyzed = options.pool->ParallelFor(
        node_count, /*min_chunk=*/32, [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            bool degraded = false;
            corpus.nodes[i] =
                AnalyzeOneNode(network, web, /*api=*/nullptr,
                               static_cast<graph::NodeId>(i), &degraded);
            degraded_flags[i] = degraded ? 1 : 0;
          }
          return Status::Ok();
        });
    CheckOk(analyzed, "ResourceExtractor::AnalyzeNetwork ParallelFor");
  } else {
    for (graph::NodeId n = 0; n < node_count; ++n) {
      bool degraded = false;
      corpus.nodes[n] =
          AnalyzeOneNode(network, web, options.api, n, &degraded);
      degraded_flags[n] = degraded ? 1 : 0;
    }
  }

  // Statistics are committed in node order after the (possibly parallel)
  // analysis, keeping them independent of execution interleaving.
  size_t annotated_nodes = 0;
  for (graph::NodeId n = 0; n < node_count; ++n) {
    if (!network.node_url[n].empty()) ++corpus.nodes_with_url;
    if (corpus.nodes[n].has_text) ++corpus.nodes_with_text;
    if (corpus.nodes[n].english) ++corpus.english_nodes;
    if (!corpus.nodes[n].entities.empty()) ++annotated_nodes;
    if (degraded_flags[n] != 0) ++corpus.degraded_nodes;
  }
  if (options.metrics != nullptr) {
    using obs::MetricsRegistry;
    MetricsRegistry::Add(options.metrics, "extract.nodes", node_count);
    MetricsRegistry::Add(options.metrics, "extract.nodes_with_text",
                         corpus.nodes_with_text);
    MetricsRegistry::Add(options.metrics, "extract.nodes_with_url",
                         corpus.nodes_with_url);
    MetricsRegistry::Add(options.metrics, "extract.english_nodes",
                         corpus.english_nodes);
    MetricsRegistry::Add(options.metrics, "extract.language_filtered",
                         corpus.nodes_with_text - corpus.english_nodes);
    MetricsRegistry::Add(options.metrics, "extract.annotated_nodes",
                         annotated_nodes);
    MetricsRegistry::Add(options.metrics, "extract.degraded",
                         corpus.degraded_nodes);
  }
  return corpus;
}

index::AnalyzedQuery ResourceExtractor::AnalyzeQuery(
    const std::string& query_text) const {
  index::AnalyzedQuery q;
  q.terms = pipeline_.ProcessTerms(query_text);
  std::vector<std::string> raw_tokens =
      pipeline_.tokenizer().Tokenize(query_text);
  for (const auto& a : annotator_.Annotate(raw_tokens)) {
    q.entities.push_back(a.entity);
  }
  return q;
}

}  // namespace crowdex::platform
