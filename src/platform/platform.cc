#include "platform/platform.h"

namespace crowdex::platform {

std::string_view PlatformMaskName(PlatformMask mask) {
  switch (mask) {
    case kAllPlatformsMask:
      return "All";
    case MaskOf(Platform::kFacebook):
      return "FB";
    case MaskOf(Platform::kTwitter):
      return "TW";
    case MaskOf(Platform::kLinkedIn):
      return "LI";
    case MaskOf(Platform::kFacebook) | MaskOf(Platform::kTwitter):
      return "FB+TW";
    case MaskOf(Platform::kFacebook) | MaskOf(Platform::kLinkedIn):
      return "FB+LI";
    case MaskOf(Platform::kTwitter) | MaskOf(Platform::kLinkedIn):
      return "TW+LI";
    default:
      return "none";
  }
}

}  // namespace crowdex::platform
