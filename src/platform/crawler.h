#ifndef CROWDEX_PLATFORM_CRAWLER_H_
#define CROWDEX_PLATFORM_CRAWLER_H_

#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "platform/flaky_api.h"
#include "platform/network.h"

namespace crowdex::platform {

/// Visibility of a profile's content to a third-party crawler.
///
/// The paper collected data through platform APIs "according to the
/// privacy settings of the involved users and their contacts" (Sec. 2.3);
/// e.g. only 80 of the 13k Facebook friends of the 40 candidates exposed
/// their activities (footnote 5). This models that gate.
enum class Privacy : uint8_t {
  /// Profile and resources visible to anyone.
  kPublic = 0,
  /// Visible only to friends (mutual follows) of the owner — which a
  /// third-party crawler is not, unless the owner authorized it.
  kFriendsOnly,
  /// Visible to nobody but the owner.
  kPrivate,
};

/// API budget and retrieval limits for one crawl.
struct CrawlPolicy {
  /// Maximum profile/container fetches before the crawl stops (platform
  /// rate limits; <= 0 means unlimited).
  int max_requests = 0;
  /// "For each resource container we retrieved the most recent resources"
  /// (Sec. 3.1): cap on resources fetched per container (<= 0 = all).
  int max_container_resources = 0;
  /// When false, privacy is ignored (what the platform owner itself could
  /// do — the paper notes owners "are able to access the full user
  /// information", Sec. 3.7).
  bool respect_privacy = true;
};

/// Outcome statistics of a crawl.
struct CrawlStats {
  int requests_used = 0;
  size_t profiles_visited = 0;
  size_t profiles_denied = 0;
  size_t resources_fetched = 0;
  size_t resources_denied = 0;
  size_t containers_truncated = 0;
  bool budget_exhausted = false;
  /// Profile expansions abandoned after the retry policy gave up; the
  /// crawl continues without their neighborhoods instead of aborting.
  size_t degraded_profiles = 0;
  /// Container fetches abandoned after the retry policy gave up.
  size_t degraded_containers = 0;
  /// Transport-layer accounting (attempts, retries, injected faults,
  /// breaker trips, backoff time). All zero when no fault-injecting API
  /// layer is installed.
  FaultStats faults;
};

/// The visible network extracted by a crawl, with the mapping back to the
/// ground-truth node ids.
struct CrawlResult {
  PlatformNetwork network;
  /// truth node id -> crawled node id (absent = not visible/collected).
  std::unordered_map<graph::NodeId, graph::NodeId> node_map;
  CrawlStats stats;
  /// Truth ids of profiles whose expansion permanently failed (recorded
  /// for a later re-crawl rather than aborting the whole extraction).
  std::vector<graph::NodeId> failed_profiles;
};

/// Assigns a privacy level to every profile of `truth` (resources inherit
/// their owner's level; ownerless container posts are public). `p_public`
/// + `p_friends_only` must be <= 1; the rest are private. Deterministic in
/// `rng`. Profiles in `always_public` (e.g. celebrity/brand accounts) are
/// forced public.
std::vector<Privacy> AssignProfilePrivacy(
    const PlatformNetwork& truth, double p_public, double p_friends_only,
    const std::vector<graph::NodeId>& always_public, Rng rng);

/// Simulates the Resource Extraction step against a platform API: starting
/// from `authorized` profiles (the candidates who granted OAuth tokens),
/// walks the Table-1 neighborhood (distance <= 2) and copies every node the
/// crawler is allowed to see into a fresh `PlatformNetwork`.
///
/// Visibility rules (when `policy.respect_privacy`):
///  * authorized profiles: everything visible (they granted the token);
///  * other profiles: visible iff `privacy` is public — `kFriendsOnly`
///    content is hidden because the crawler is a third-party app, not the
///    user's friend;
///  * resources inherit their creating/owning profile's visibility;
///    container-contained resources without a visible owner are public.
///
/// Each profile or container expansion costs one request against
/// `policy.max_requests`.
///
/// When `api` is non-null, every profile/container request additionally
/// goes through the fault-injecting transport: transient failures are
/// retried per its policy, and expansions that still fail are recorded in
/// `CrawlResult::failed_profiles` / the degradation counters while the
/// crawl carries on (graceful degradation — a flaky backend yields a
/// smaller crawl, never an inconsistent or aborted one). With `api ==
/// nullptr` — or a config whose fault probabilities are all zero — the
/// result is identical to the fault-free crawl.
///
/// A non-null `metrics` publishes the final `CrawlStats` as `crawl.*`
/// counters (accumulating across platforms when the registry is shared)
/// plus the crawl wall time (`stage_ms.crawl`); the crawled network is
/// bit-identical either way.
Result<CrawlResult> CrawlNetwork(const PlatformNetwork& truth,
                                 const std::vector<graph::NodeId>& authorized,
                                 const std::vector<Privacy>& privacy,
                                 const CrawlPolicy& policy,
                                 FlakyApi* api = nullptr,
                                 obs::MetricsRegistry* metrics = nullptr);

}  // namespace crowdex::platform

#endif  // CROWDEX_PLATFORM_CRAWLER_H_
