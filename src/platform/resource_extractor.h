#ifndef CROWDEX_PLATFORM_RESOURCE_EXTRACTOR_H_
#define CROWDEX_PLATFORM_RESOURCE_EXTRACTOR_H_

#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "entity/annotator.h"
#include "entity/knowledge_base.h"
#include "index/search_index.h"
#include "platform/flaky_api.h"
#include "platform/network.h"
#include "platform/web_page_store.h"
#include "text/pipeline.h"

namespace crowdex::platform {

/// The analyzed form of one node's textual content, ready for indexing.
struct AnalyzedNode {
  graph::NodeId node = graph::kInvalidNodeId;
  /// Detected language of the (URL-enriched) text.
  text::Language language = text::Language::kUnknown;
  /// True iff the node had any text at all.
  bool has_text = false;
  /// True iff the URL-enriched text was classified as English; only English
  /// nodes are indexed, per Sec. 3.1.
  bool english = false;
  /// Processed index terms (stemmed, stop-word free).
  std::vector<std::string> terms;
  /// Recognized + disambiguated entities with frequencies.
  std::vector<index::DocEntity> entities;
};

/// Per-platform analysis output.
struct AnalyzedCorpus {
  Platform platform = Platform::kFacebook;
  /// One entry per graph node (aligned with node ids).
  std::vector<AnalyzedNode> nodes;
  /// Counts for dataset statistics (Fig. 5a).
  size_t nodes_with_text = 0;
  size_t english_nodes = 0;
  size_t nodes_with_url = 0;
  /// Nodes whose URL enrichment permanently failed at the transport layer
  /// and fell back to the resource's own text (graceful degradation).
  /// Zero without a fault-injecting extraction API; not persisted by the
  /// corpus cache (the cache only ever stores fault-free analyses).
  size_t degraded_nodes = 0;
};

/// Feature toggles for the analysis pipeline (ablation studies; defaults
/// are the paper's configuration).
struct ExtractorOptions {
  entity::AnnotatorOptions annotator;
  text::TextPipelineOptions pipeline;
  /// Enrich resources with the extracted content of linked Web pages
  /// (the Alchemy step of Sec. 2.3). Off = resources stand alone.
  bool enrich_urls = true;
};

/// Per-call knobs of `AnalyzeNetwork` (the analysis pipeline itself is
/// configured once, at extractor construction).
struct NetworkAnalyzeOptions {
  /// Fault-injecting extraction API (the Alchemy role) for URL fetches:
  /// transient failures are retried per its policy, permanent failures
  /// fall back to the resource's own text and are counted in
  /// `AnalyzedCorpus::degraded_nodes`. Null = the fault-free direct path.
  /// A non-null API forces sequential analysis regardless of `pool`:
  /// `FlakyApi` draws faults from one ordered stream and is
  /// single-threaded by design.
  FlakyApi* api = nullptr;
  /// Worker pool for per-resource parallelism. Null (or a 1-thread pool)
  /// analyzes sequentially. The parallel path is bit-identical to the
  /// sequential one: every resource's analysis depends only on its own
  /// node, and results are committed in node-id order.
  common::ThreadPool* pool = nullptr;
  /// Observability registry (null = off): the analysis publishes the
  /// corpus statistics as `extract.*` counters and its wall time as
  /// `stage_ms.extract`. Purely observational — the analyzed corpus is
  /// bit-identical with or without it, at any thread count.
  obs::MetricsRegistry* metrics = nullptr;
};

/// The analysis pipeline of Fig. 4: URL content extraction -> language
/// identification -> text processing -> entity recognition and
/// disambiguation. The same pipeline analyzes expertise needs (queries);
/// see `AnalyzeQuery`.
///
/// The extractor is immutable after construction, so one instance may
/// analyze any number of networks concurrently (that is exactly what the
/// parallel `AnalyzeNetwork` path does).
class ResourceExtractor {
 public:
  /// `kb` must outlive the extractor. Annotation options are the
  /// annotator's defaults unless overridden.
  explicit ResourceExtractor(const entity::KnowledgeBase* kb);
  ResourceExtractor(const entity::KnowledgeBase* kb,
                    entity::AnnotatorOptions annotator_options);
  ResourceExtractor(const entity::KnowledgeBase* kb,
                    const ExtractorOptions& options);

  /// Analyzes one text blob (resource body + extracted URL content already
  /// merged). Exposed for query analysis and tests.
  AnalyzedNode AnalyzeText(const std::string& text) const;

  /// Analyzes every node of `network`, enriching nodes that carry a URL
  /// with the page text found in `web` (missing pages degrade gracefully
  /// to the resource's own text). `options` selects the transport (direct
  /// vs fault-injecting) and the degree of parallelism; the default is the
  /// sequential fault-free path.
  AnalyzedCorpus AnalyzeNetwork(const PlatformNetwork& network,
                                const WebPageStore& web,
                                const NetworkAnalyzeOptions& options = {})
      const;

  /// Analyzes an expertise need: same text processing and entity
  /// recognition, no language filter (queries are English by construction).
  index::AnalyzedQuery AnalyzeQuery(const std::string& query_text) const;

  const text::TextPipeline& pipeline() const { return pipeline_; }
  const entity::EntityAnnotator& annotator() const { return annotator_; }
  bool enrich_urls() const { return enrich_urls_; }

 private:
  /// Analyzes node `n` of `network`: URL enrichment through `api` (or the
  /// direct store when null), then the text pipeline. Sets `*degraded`
  /// when a transport-level failure forced the fallback to own text.
  AnalyzedNode AnalyzeOneNode(const PlatformNetwork& network,
                              const WebPageStore& web, FlakyApi* api,
                              graph::NodeId n, bool* degraded) const;

  text::TextPipeline pipeline_;
  entity::EntityAnnotator annotator_;
  bool enrich_urls_ = true;
};

}  // namespace crowdex::platform

#endif  // CROWDEX_PLATFORM_RESOURCE_EXTRACTOR_H_
