#include "platform/crawler.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/span.h"

namespace crowdex::platform {

namespace {

using graph::EdgeKind;
using graph::NodeId;
using graph::NodeKind;

}  // namespace

std::vector<Privacy> AssignProfilePrivacy(
    const PlatformNetwork& truth, double p_public, double p_friends_only,
    const std::vector<graph::NodeId>& always_public, Rng rng) {
  std::vector<Privacy> privacy(truth.graph.node_count(), Privacy::kPublic);
  for (NodeId n = 0; n < truth.graph.node_count(); ++n) {
    if (truth.graph.kind(n) != NodeKind::kUserProfile) continue;
    double roll = rng.NextDouble();
    if (roll < p_public) {
      privacy[n] = Privacy::kPublic;
    } else if (roll < p_public + p_friends_only) {
      privacy[n] = Privacy::kFriendsOnly;
    } else {
      privacy[n] = Privacy::kPrivate;
    }
  }
  for (NodeId n : always_public) {
    if (n < privacy.size()) privacy[n] = Privacy::kPublic;
  }
  return privacy;
}

Result<CrawlResult> CrawlNetwork(const PlatformNetwork& truth,
                                 const std::vector<graph::NodeId>& authorized,
                                 const std::vector<Privacy>& privacy,
                                 const CrawlPolicy& policy, FlakyApi* api,
                                 obs::MetricsRegistry* metrics) {
  if (authorized.empty()) {
    return Status::InvalidArgument("no authorized profiles");
  }
  obs::StageTimer timer(metrics, "crawl");
  if (privacy.size() != truth.graph.node_count()) {
    return Status::InvalidArgument(
        "privacy vector must cover every node of the network");
  }
  std::unordered_set<NodeId> auth_set;
  for (NodeId n : authorized) {
    if (!truth.graph.Contains(n) ||
        truth.graph.kind(n) != NodeKind::kUserProfile) {
      return Status::InvalidArgument("authorized id is not a profile");
    }
    auth_set.insert(n);
  }

  CrawlResult result;
  result.network.platform = truth.platform;
  CrawlStats& stats = result.stats;

  auto profile_visible = [&](NodeId p) {
    if (auth_set.contains(p)) return true;
    if (!policy.respect_privacy) return true;
    return privacy[p] == Privacy::kPublic;
  };

  // Copies a node into the crawled network once; returns its new id.
  // Payload text passes through the fault layer's corruption model: a
  // mangled API response is stored as-is, exactly like a real crawl would.
  auto copy_node = [&](NodeId n) -> NodeId {
    auto it = result.node_map.find(n);
    if (it != result.node_map.end()) return it->second;
    std::string text = truth.node_text[n];
    if (api != nullptr) text = api->MaybeCorrupt(std::move(text));
    NodeId fresh = result.network.AddNode(
        truth.graph.kind(n), truth.graph.label(n), std::move(text),
        truth.node_url[n]);
    result.node_map.emplace(n, fresh);
    return fresh;
  };
  auto copy_edge = [&](NodeId from, NodeId to, EdgeKind kind) {
    // Both endpoints are guaranteed copied by the callers.
    (void)result.network.graph.AddEdge(result.node_map.at(from),
                                       result.node_map.at(to), kind);
  };

  // One request against the API budget; false = budget exhausted.
  auto spend_request = [&]() {
    if (policy.max_requests > 0 && stats.requests_used >= policy.max_requests) {
      stats.budget_exhausted = true;
      return false;
    }
    ++stats.requests_used;
    return true;
  };

  // Issues one transport-level request through the fault layer (when one
  // is installed); false = the request permanently failed after retries.
  auto transport_ok = [&](std::string_view what) {
    if (api == nullptr) return true;
    return api->Call(what).ok();
  };

  // Fetches the resources a profile owns/creates/annotates.
  auto fetch_profile_resources = [&](NodeId p) {
    for (EdgeKind k :
         {EdgeKind::kOwns, EdgeKind::kCreates, EdgeKind::kAnnotates}) {
      for (NodeId r : truth.graph.OutNeighbors(p, k)) {
        copy_node(r);
        copy_edge(p, r, k);
        ++stats.resources_fetched;
      }
    }
  };

  // Fetches a container's description and its (capped) recent resources.
  auto fetch_container = [&](NodeId member, NodeId c) {
    if (!spend_request()) return;
    if (!transport_ok("container")) {
      ++stats.degraded_containers;
      return;
    }
    copy_node(c);
    copy_edge(member, c, EdgeKind::kRelatesTo);
    std::vector<NodeId> posts = truth.graph.OutNeighbors(c, EdgeKind::kContains);
    size_t limit = posts.size();
    if (policy.max_container_resources > 0 &&
        limit > static_cast<size_t>(policy.max_container_resources)) {
      limit = static_cast<size_t>(policy.max_container_resources);
      ++stats.containers_truncated;
    }
    // Injected response truncation: the API returned a partial page.
    if (api != nullptr) {
      size_t injected = api->MaybeTruncateCount(limit);
      if (injected < limit) {
        limit = injected;
        ++stats.containers_truncated;
      }
    }
    for (size_t i = 0; i < limit; ++i) {
      copy_node(posts[i]);
      copy_edge(c, posts[i], EdgeKind::kContains);
      ++stats.resources_fetched;
    }
    stats.resources_denied += posts.size() - limit;
  };

  // BFS over profiles, depth <= 1 profile-hops (profiles reached through a
  // follow are expanded once more, giving the Table-1 distance-2 reach).
  std::deque<std::pair<NodeId, int>> queue;
  std::unordered_set<NodeId> expanded;
  std::unordered_set<NodeId> failed;
  for (NodeId seed : authorized) queue.emplace_back(seed, 0);

  while (!queue.empty()) {
    auto [p, hops] = queue.front();
    queue.pop_front();
    if (expanded.contains(p) || failed.contains(p)) continue;

    ++stats.profiles_visited;
    if (!profile_visible(p)) {
      ++stats.profiles_denied;
      continue;
    }
    if (!spend_request()) break;
    if (!transport_ok("profile")) {
      // Permanently failed expansion: record it and move on — losing one
      // neighborhood must not lose the crawl.
      failed.insert(p);
      ++stats.degraded_profiles;
      result.failed_profiles.push_back(p);
      continue;
    }
    expanded.insert(p);
    copy_node(p);

    fetch_profile_resources(p);
    for (NodeId c : truth.graph.OutNeighbors(p, EdgeKind::kRelatesTo)) {
      fetch_container(p, c);
    }
    for (NodeId followed : truth.graph.OutNeighbors(p, EdgeKind::kFollows)) {
      if (!profile_visible(followed)) {
        ++stats.profiles_denied;
        continue;
      }
      copy_node(followed);
      copy_edge(p, followed, EdgeKind::kFollows);
      if (truth.graph.HasEdge(followed, p, EdgeKind::kFollows)) {
        copy_edge(followed, p, EdgeKind::kFollows);
      }
      if (hops < 1) queue.emplace_back(followed, hops + 1);
    }
  }
  if (api != nullptr) stats.faults = api->stats();
  if (metrics != nullptr) {
    using obs::MetricsRegistry;
    MetricsRegistry::Add(metrics, "crawl.requests_used",
                         static_cast<uint64_t>(stats.requests_used));
    MetricsRegistry::Add(metrics, "crawl.profiles_visited",
                         stats.profiles_visited);
    MetricsRegistry::Add(metrics, "crawl.profiles_denied",
                         stats.profiles_denied);
    MetricsRegistry::Add(metrics, "crawl.resources_fetched",
                         stats.resources_fetched);
    MetricsRegistry::Add(metrics, "crawl.resources_denied",
                         stats.resources_denied);
    MetricsRegistry::Add(metrics, "crawl.containers_truncated",
                         stats.containers_truncated);
    MetricsRegistry::Add(metrics, "crawl.degraded_profiles",
                         stats.degraded_profiles);
    MetricsRegistry::Add(metrics, "crawl.degraded_containers",
                         stats.degraded_containers);
    MetricsRegistry::Add(metrics, "crawl.nodes_crawled",
                         result.network.graph.node_count());
    if (stats.budget_exhausted) {
      MetricsRegistry::Add(metrics, "crawl.budget_exhausted");
    }
  }
  return result;
}

}  // namespace crowdex::platform
