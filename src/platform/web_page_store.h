#ifndef CROWDEX_PLATFORM_WEB_PAGE_STORE_H_
#define CROWDEX_PLATFORM_WEB_PAGE_STORE_H_

#include <string>
#include <string_view>
#include <unordered_map>

#include "common/status.h"
#include "common/string_util.h"

namespace crowdex::platform {

/// Simulated external Web.
///
/// The paper enriches resources with text extracted from linked Web pages
/// (via the Alchemy extraction API — Sec. 2.3, footnote 4). We do not have
/// the live Web, so linked pages are materialized into this store by the
/// synthetic world generator: each URL maps to the "main content" text that
/// a boilerplate-removal extractor would return. 70 % of generated
/// resources carry a URL, matching the dataset statistics of Sec. 3.1.
class WebPageStore {
 public:
  WebPageStore() = default;

  /// Registers `url` -> `extracted_text`. Re-registering a URL overwrites
  /// the previous content (the Web changes).
  void Put(std::string url, std::string extracted_text);

  /// Returns the extracted main content of `url`, or NotFound. A NotFound
  /// is not an error for callers: real extraction fails routinely (dead
  /// links, paywalls) and the pipeline must degrade to the resource's own
  /// text.
  Result<std::string> Fetch(std::string_view url) const;

  /// True iff `url` resolves.
  bool Contains(std::string_view url) const;

  /// Number of stored pages.
  size_t size() const { return pages_.size(); }

 private:
  /// Transparent hash/eq so `Fetch`/`Contains` resolve `string_view` URLs
  /// without allocating a temporary key — these are the hottest lookups of
  /// the enrichment pass (one per URL-carrying node).
  std::unordered_map<std::string, std::string, TransparentStringHash,
                     std::equal_to<>>
      pages_;
};

}  // namespace crowdex::platform

#endif  // CROWDEX_PLATFORM_WEB_PAGE_STORE_H_
