#ifndef CROWDEX_PLATFORM_FLAKY_API_H_
#define CROWDEX_PLATFORM_FLAKY_API_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/retry.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "platform/web_page_store.h"

namespace crowdex::obs {
class Counter;
class MetricsRegistry;
}  // namespace crowdex::obs

namespace crowdex::platform {

/// Seeded, deterministic fault model for one platform's API transport.
///
/// The paper's Resource Extraction step ran against live Facebook /
/// Twitter / LinkedIn APIs and the Alchemy URL extractor — services that
/// rate-limit, time out, and return partial data routinely (only ~230k of
/// ~330k collected resources survived to analysis, Sec. 3.1). The crawl
/// simulation is exercised under the same conditions by routing every
/// simulated request through this layer.
///
/// All stochastic decisions draw from a private SplitMix64 stream seeded
/// by `seed`, and all timing runs on a `SimClock`, so a fault scenario is
/// exactly reproducible: identical `FaultConfig` + seed => identical fault
/// sequence, identical crawl, identical statistics. Probability-zero knobs
/// consume no randomness, which keeps the disabled configuration
/// byte-identical to not having the layer at all.
struct FaultConfig {
  /// Probability that one attempt fails with `kUnavailable` (flaky
  /// transport: connection resets, 5xx, read timeouts).
  double transient_error_prob = 0.0;
  /// Probability (per attempt) that a burst outage starts; while it lasts
  /// every attempt fails with `kUnavailable`.
  double burst_start_prob = 0.0;
  /// Length of a burst outage in simulated milliseconds.
  uint64_t burst_duration_ms = 5'000;
  /// Requests admitted per rate-limit window; <= 0 disables rate limiting.
  /// Attempts beyond the quota fail with `kResourceExhausted`.
  int rate_limit_requests = 0;
  /// Length of the rate-limit window in simulated milliseconds.
  uint64_t rate_limit_window_ms = 60'000;
  /// Probability that a successful response is truncated (partial page of
  /// a container listing, cut-off page body).
  double truncate_prob = 0.0;
  /// Probability that a successful payload arrives corrupted (mangled
  /// encoding, mid-document garbage) — not detectable by the transport,
  /// so retries do not help; the analysis pipeline must survive it.
  double corrupt_prob = 0.0;
  /// Simulated latency of one attempt.
  uint64_t attempt_latency_ms = 20;
  /// Seed of the fault stream.
  uint64_t seed = 1;
  /// Retry/backoff/deadline policy applied to every logical request.
  RetryPolicy retry;
  /// Circuit-breaker configuration (per platform backend).
  CircuitBreakerConfig breaker;
  /// Master switch for retrying: false degrades every logical request to
  /// a single attempt (the ablation arm of the degradation benchmark).
  bool retries_enabled = true;
};

/// Counters accumulated by a `FlakyApi` over its lifetime.
struct FaultStats {
  /// Logical requests issued through the layer.
  size_t requests = 0;
  /// Raw attempts, including retries.
  size_t attempts = 0;
  /// Attempts beyond the first, across all requests.
  size_t retries = 0;
  /// Attempts that failed with an injected transient fault.
  size_t transient_faults = 0;
  /// Subset of `transient_faults` injected during a burst outage.
  size_t outage_faults = 0;
  /// Attempts rejected by the rate limiter.
  size_t rate_limited = 0;
  /// Logical requests that still failed after retrying.
  size_t failures = 0;
  /// Logical requests abandoned because the deadline elapsed.
  size_t deadline_exceeded = 0;
  /// Circuit-breaker trips (closed/half-open -> open transitions).
  size_t breaker_trips = 0;
  /// Logical requests shed by an open breaker without an attempt.
  size_t breaker_shed = 0;
  /// Successful responses that were truncated.
  size_t truncated_responses = 0;
  /// Successful payloads that were corrupted.
  size_t corrupted_payloads = 0;
  /// Simulated milliseconds spent in backoff waits.
  uint64_t backoff_ms = 0;

  friend bool operator==(const FaultStats&, const FaultStats&) = default;
};

/// Fault-injecting wrapper around one platform backend (the profile /
/// container / timeline endpoints used by `CrawlNetwork`) and the URL
/// extractor used by `ResourceExtractor`. Single-threaded by design: use
/// one instance per platform, as `AnalyzeWorld` does.
class FlakyApi {
 public:
  /// `clock` may be null, in which case the API runs its own clock.
  /// A non-null clock must outlive the instance.
  explicit FlakyApi(const FaultConfig& config, SimClock* clock = nullptr);

  /// One logical API request (retried per policy, breaker-gated).
  /// Returns OK, or the final failure: `kUnavailable` (transient fault /
  /// outage / breaker shed), `kResourceExhausted` (rate limit), or
  /// `kDeadlineExceeded`. `what` labels the endpoint in error messages.
  Status Call(std::string_view what);

  /// Fetches `url` through the fault layer: transport faults are retried
  /// per policy, a missing page is a permanent `kNotFound` (dead link —
  /// retrying cannot help), and successful payloads may arrive truncated
  /// or corrupted.
  Result<std::string> FetchUrl(const WebPageStore& web, std::string_view url);

  /// Applies response truncation to a list response of `full_count`
  /// items: returns `full_count`, or roughly half of it when the
  /// truncation fault fires.
  size_t MaybeTruncateCount(size_t full_count);

  /// Applies payload corruption to `text`: returns it unchanged, or with
  /// a deterministic fraction of characters garbled when the corruption
  /// fault fires.
  std::string MaybeCorrupt(std::string text);

  /// Accumulated counters (breaker trips/sheds folded in).
  FaultStats stats() const;

  /// Attaches an observability registry: every logical request publishes
  /// `<prefix>requests/attempts/retries/failures/deadline_exceeded/
  /// breaker_shed`, simulated `<prefix>backoff_wait_ms`, per-StatusCode
  /// `<prefix>attempt_failures.<Code>`, and the breaker's per-edge
  /// transition counters (`<prefix>breaker.<edge>`). `metrics` (which must
  /// outlive the instance) is observed, never consulted: the fault stream,
  /// clock, and returned statuses are identical with or without it. Null
  /// detaches.
  void set_metrics(obs::MetricsRegistry* metrics, std::string_view prefix);

  const CircuitBreaker& breaker() const { return breaker_; }
  const FaultConfig& config() const { return config_; }
  SimClock* clock() { return clock_; }

 private:
  /// One raw attempt: advances the clock by the attempt latency, applies
  /// the rate limiter, the outage model, and the transient-fault roll.
  Status AttemptOnce(std::string_view what);

  /// Publishes one `Call`'s deltas to the attached registry (single-
  /// threaded like the rest of the class, so plain delta tracking works).
  void PublishCallMetrics(const RetryOutcome& outcome);

  FaultConfig config_;
  SimClock own_clock_;
  SimClock* clock_;
  Rng rng_;
  CircuitBreaker breaker_;
  FaultStats stats_;
  /// Observability (null = off). Handles are cached at `set_metrics`.
  obs::MetricsRegistry* metrics_ = nullptr;
  std::string metrics_prefix_;
  obs::Counter* m_requests_ = nullptr;
  obs::Counter* m_attempts_ = nullptr;
  obs::Counter* m_retries_ = nullptr;
  obs::Counter* m_backoff_wait_ms_ = nullptr;
  obs::Counter* m_failures_ = nullptr;
  obs::Counter* m_deadline_exceeded_ = nullptr;
  obs::Counter* m_breaker_shed_ = nullptr;
  /// Breaker transitions already published (deltas since this snapshot).
  BreakerTransitions published_transitions_;
  /// Burst-outage end time (0 = no outage in progress).
  uint64_t outage_until_ms_ = 0;
  /// Rate-limit window bookkeeping.
  uint64_t window_start_ms_ = 0;
  int window_requests_ = 0;
};

}  // namespace crowdex::platform

#endif  // CROWDEX_PLATFORM_FLAKY_API_H_
