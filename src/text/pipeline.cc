#include "text/pipeline.h"

namespace crowdex::text {

ProcessedText TextPipeline::Process(std::string_view raw) const {
  ProcessedText out;
  out.language = lang_id_.Identify(raw);
  out.terms = ProcessTerms(raw);
  return out;
}

std::vector<std::string> TextPipeline::ProcessTerms(
    std::string_view raw) const {
  std::vector<std::string> tokens = tokenizer_.Tokenize(raw);
  if (options_.remove_stopwords) tokens = stopwords_.Filter(tokens);
  if (options_.stem) tokens = stemmer_.StemAll(tokens);
  return tokens;
}

}  // namespace crowdex::text
