#include "text/language_id.h"

#include <cmath>

#include "common/string_util.h"
#include "text/tokenizer.h"

namespace crowdex::text {

namespace {

// Embedded sample text used to build trigram profiles. Each sample is a few
// sentences of ordinary prose in the language; only character statistics
// matter, not content.
constexpr std::string_view kEnglishSample =
    "the quick brown fox jumps over the lazy dog and then runs through the "
    "green fields looking for something interesting to eat because it has "
    "been hungry since the early morning when the sun was rising over the "
    "hills and the people in the village were starting their daily work "
    "with great energy and enthusiasm for the things that would happen";

constexpr std::string_view kItalianSample =
    "la volpe veloce salta sopra il cane pigro e poi corre attraverso i "
    "campi verdi cercando qualcosa di interessante da mangiare perche ha "
    "fame dalla mattina presto quando il sole sorgeva sopra le colline e le "
    "persone del villaggio iniziavano il loro lavoro quotidiano con grande "
    "energia ed entusiasmo per le cose che sarebbero successe durante la "
    "giornata che si annunciava bellissima";

constexpr std::string_view kSpanishSample =
    "el zorro rapido salta sobre el perro perezoso y luego corre a traves "
    "de los campos verdes buscando algo interesante para comer porque tiene "
    "hambre desde la manana temprano cuando el sol salia sobre las colinas "
    "y la gente del pueblo comenzaba su trabajo diario con mucha energia y "
    "entusiasmo por las cosas que iban a suceder durante el dia";

constexpr std::string_view kFrenchSample =
    "le renard rapide saute par dessus le chien paresseux et puis court a "
    "travers les champs verts en cherchant quelque chose d interessant a "
    "manger parce qu il a faim depuis le matin quand le soleil se levait "
    "sur les collines et que les gens du village commencaient leur travail "
    "quotidien avec beaucoup d energie et d enthousiasme pour les choses";

constexpr std::string_view kGermanSample =
    "der schnelle braune fuchs springt uber den faulen hund und lauft dann "
    "durch die grunen felder auf der suche nach etwas interessantem zu "
    "essen weil er seit dem fruhen morgen hungrig ist als die sonne uber "
    "den hugeln aufging und die menschen im dorf ihre tagliche arbeit mit "
    "grosser energie und begeisterung begannen fur die dinge die geschehen";

std::vector<std::string> EnglishFunctionWords() {
  return {"the", "and", "of",  "to",   "in",   "is",  "that", "for",
          "it",  "with", "as", "was",  "on",   "are", "this", "have",
          "from", "not", "but", "they", "what", "his", "her",  "you"};
}

std::vector<std::string> ItalianFunctionWords() {
  return {"il",  "la",  "di",  "che", "e",    "un",  "una", "per",
          "non", "sono", "con", "del", "della", "gli", "le",  "nel",
          "si",  "da",  "come", "anche", "piu", "questo", "questa", "ma"};
}

std::vector<std::string> SpanishFunctionWords() {
  return {"el",  "la",  "de",  "que",  "y",    "en",   "un",   "una",
          "los", "las", "por", "con",  "para", "del",  "se",   "no",
          "es",  "al",  "lo",  "como", "mas",  "pero", "sus",  "este"};
}

std::vector<std::string> FrenchFunctionWords() {
  return {"le",  "la",   "de",  "et",  "les",  "des", "un",  "une",
          "du",  "que",  "est", "pour", "dans", "qui", "sur", "pas",
          "au",  "avec", "ce",  "il",   "elle", "ne",  "se",  "mais"};
}

std::vector<std::string> GermanFunctionWords() {
  return {"der", "die",  "das", "und",  "ist",  "ein",  "eine", "nicht",
          "mit", "auf",  "fur", "von",  "dem",  "den",  "des",  "im",
          "zu",  "sich", "als", "auch", "nach", "bei",  "aus",  "wie"};
}

}  // namespace

std::string_view LanguageCode(Language lang) {
  switch (lang) {
    case Language::kEnglish:
      return "en";
    case Language::kItalian:
      return "it";
    case Language::kSpanish:
      return "es";
    case Language::kFrench:
      return "fr";
    case Language::kGerman:
      return "de";
    case Language::kUnknown:
      return "??";
  }
  return "??";
}

TrigramCounts TrigramFrequencies(std::string_view text) {
  std::string normalized = "_";
  for (char c : text) {
    if (IsAsciiAlpha(c)) {
      normalized.push_back(
          c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c);
    } else if (normalized.back() != '_') {
      normalized.push_back('_');
    }
  }
  if (normalized.back() != '_') normalized.push_back('_');

  TrigramCounts freq;
  if (normalized.size() < 3) return freq;
  double total = 0.0;
  for (size_t i = 0; i + 3 <= normalized.size(); ++i) {
    // Pack the three bytes into the key; skip all-separator trigrams.
    if (normalized[i] == '_' && normalized[i + 1] == '_') continue;
    uint32_t key = (static_cast<uint32_t>(
                        static_cast<unsigned char>(normalized[i]))
                    << 16) |
                   (static_cast<uint32_t>(
                        static_cast<unsigned char>(normalized[i + 1]))
                    << 8) |
                   static_cast<uint32_t>(
                       static_cast<unsigned char>(normalized[i + 2]));
    freq[key] += 1.0;
    total += 1.0;
  }
  if (total > 0.0) {
    for (auto& [tri, f] : freq) f /= total;
  }
  return freq;
}

LanguageIdentifier::Profile LanguageIdentifier::BuildProfile(
    Language lang, std::string_view sample,
    const std::vector<std::string>& words) {
  Profile p;
  p.lang = lang;
  p.trigram_freq = TrigramFrequencies(sample);
  double norm = 0.0;
  for (const auto& [tri, f] : p.trigram_freq) norm += f * f;
  p.trigram_norm = std::sqrt(norm);
  for (const auto& w : words) p.function_words[w] = true;
  return p;
}

LanguageIdentifier::LanguageIdentifier() {
  profiles_.push_back(BuildProfile(Language::kEnglish, kEnglishSample,
                                   EnglishFunctionWords()));
  profiles_.push_back(BuildProfile(Language::kItalian, kItalianSample,
                                   ItalianFunctionWords()));
  profiles_.push_back(BuildProfile(Language::kSpanish, kSpanishSample,
                                   SpanishFunctionWords()));
  profiles_.push_back(
      BuildProfile(Language::kFrench, kFrenchSample, FrenchFunctionWords()));
  profiles_.push_back(
      BuildProfile(Language::kGerman, kGermanSample, GermanFunctionWords()));
}

double LanguageIdentifier::ScoreAgainst(
    const Profile& profile, const std::vector<std::string>& tokens,
    const TrigramCounts& text_trigrams) const {
  // Signal 1: fraction of tokens that are function words of this language.
  double word_hits = 0.0;
  for (const auto& t : tokens) {
    if (profile.function_words.contains(t)) word_hits += 1.0;
  }
  double word_score =
      tokens.empty() ? 0.0 : word_hits / static_cast<double>(tokens.size());

  // Signal 2: cosine similarity between trigram frequency vectors (the
  // profile norm is precomputed at construction).
  double dot = 0.0;
  double norm_text = 0.0;
  for (const auto& [tri, f] : text_trigrams) {
    norm_text += f * f;
    auto it = profile.trigram_freq.find(tri);
    if (it != profile.trigram_freq.end()) dot += f * it->second;
  }
  double cosine = 0.0;
  if (norm_text > 0.0 && profile.trigram_norm > 0.0) {
    cosine = dot / (std::sqrt(norm_text) * profile.trigram_norm);
  }

  return 0.65 * word_score + 0.35 * cosine;
}

std::vector<std::pair<Language, double>> LanguageIdentifier::Scores(
    std::string_view raw_text) const {
  Tokenizer tokenizer;
  std::vector<std::string> tokens = tokenizer.Tokenize(raw_text);
  auto trigrams = TrigramFrequencies(tokenizer.Sanitize(raw_text));
  std::vector<std::pair<Language, double>> out;
  out.reserve(profiles_.size());
  for (const auto& p : profiles_) {
    out.emplace_back(p.lang, ScoreAgainst(p, tokens, trigrams));
  }
  return out;
}

Language LanguageIdentifier::Identify(std::string_view raw_text) const {
  auto scores = Scores(raw_text);
  Language best = Language::kUnknown;
  double best_score = 0.0;
  for (const auto& [lang, score] : scores) {
    if (score > best_score) {
      best_score = score;
      best = lang;
    }
  }
  if (best_score < min_confidence_) return Language::kUnknown;
  return best;
}

}  // namespace crowdex::text
