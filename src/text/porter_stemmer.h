#ifndef CROWDEX_TEXT_PORTER_STEMMER_H_
#define CROWDEX_TEXT_PORTER_STEMMER_H_

#include <string>
#include <string_view>
#include <vector>

namespace crowdex::text {

/// The classic Porter stemming algorithm (M. F. Porter, 1980).
///
/// This is the stemming step of the paper's text-processing pipeline
/// (Sec. 2.3). The implementation follows the original five-step
/// definition, including the revised Step-2 rules (`abli -> able`,
/// `logi -> log`). Input is expected to be a lowercase ASCII word; words
/// shorter than 3 characters are returned unchanged, per the reference
/// implementation.
class PorterStemmer {
 public:
  PorterStemmer() = default;

  /// Returns the stem of `word`.
  std::string Stem(std::string_view word) const;

  /// Stems every token in `tokens` (convenience for pipelines).
  std::vector<std::string> StemAll(const std::vector<std::string>& tokens) const;
};

}  // namespace crowdex::text

#endif  // CROWDEX_TEXT_PORTER_STEMMER_H_
