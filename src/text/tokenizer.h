#ifndef CROWDEX_TEXT_TOKENIZER_H_
#define CROWDEX_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace crowdex::text {

/// Options controlling sanitization and token emission.
struct TokenizerOptions {
  /// Drop tokens shorter than this many characters.
  size_t min_token_length = 2;
  /// Drop tokens longer than this many characters (noise guard).
  size_t max_token_length = 30;
  /// When true, `http(s)://...` and `www....` spans are removed before
  /// tokenization (their content is handled by URL content extraction, not
  /// by the tokenizer — see `platform::ResourceExtractor`).
  bool strip_urls = true;
  /// When true, `@mention` handles are removed (they name accounts, not
  /// topical content).
  bool strip_mentions = true;
  /// When true, the `#` of a hashtag is removed but the tag word is kept
  /// ("#swimming" -> "swimming"), since hashtags are topical.
  bool keep_hashtag_words = true;
  /// When true, tokens consisting only of digits are dropped.
  bool drop_pure_numbers = true;
};

/// Splits raw social-media text into lowercase word tokens.
///
/// Sanitization handles the idiosyncrasies of the resources the paper
/// analyzes (tweets, wall posts, group posts): URLs, @mentions, #hashtags,
/// HTML entities, punctuation, and repeated whitespace. The tokenizer is
/// deliberately ASCII-oriented: non-ASCII bytes act as separators, which is
/// adequate because non-English resources are filtered upstream by the
/// language identifier (Sec. 3.1 of the paper keeps English text only).
class Tokenizer {
 public:
  Tokenizer() : Tokenizer(TokenizerOptions{}) {}
  explicit Tokenizer(TokenizerOptions options) : options_(options) {}

  /// Returns the sanitized, lowercased word tokens of `raw`.
  std::vector<std::string> Tokenize(std::string_view raw) const;

  /// Removes URLs / mentions / HTML entities per the options and returns
  /// the cleaned text. Exposed for testing and for the language identifier,
  /// which wants cleaned but untokenized text.
  std::string Sanitize(std::string_view raw) const;

  const TokenizerOptions& options() const { return options_; }

 private:
  TokenizerOptions options_;
};

}  // namespace crowdex::text

#endif  // CROWDEX_TEXT_TOKENIZER_H_
