#ifndef CROWDEX_TEXT_STOPWORDS_H_
#define CROWDEX_TEXT_STOPWORDS_H_

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace crowdex::text {

/// English stop-word filter used by the text-processing step (Sec. 2.3).
///
/// The default list is the classic IR list (articles, pronouns, auxiliary
/// verbs, prepositions, common adverbs). Custom words can be added for
/// domain-specific deployments.
class StopwordFilter {
 public:
  /// Builds a filter over the built-in English list.
  StopwordFilter();

  /// Builds a filter over `words` only (no built-ins).
  explicit StopwordFilter(const std::vector<std::string>& words);

  /// Returns true iff `token` is a stop word. Expects lowercase input.
  bool IsStopword(std::string_view token) const;

  /// Adds `word` to the filter.
  void Add(std::string_view word);

  /// Returns `tokens` with stop words removed, preserving order.
  std::vector<std::string> Filter(const std::vector<std::string>& tokens) const;

  /// Number of words in the filter.
  size_t size() const { return words_.size(); }

 private:
  std::unordered_set<std::string> words_;
};

/// Returns the built-in English stop-word list.
const std::vector<std::string>& EnglishStopwords();

}  // namespace crowdex::text

#endif  // CROWDEX_TEXT_STOPWORDS_H_
