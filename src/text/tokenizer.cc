#include "text/tokenizer.h"

#include <algorithm>
#include <cctype>

#include "common/string_util.h"

namespace crowdex::text {

namespace {

// Returns the end index of a URL starting at `i` in `s`.
size_t UrlEnd(std::string_view s, size_t i) {
  size_t j = i;
  while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) {
    ++j;
  }
  return j;
}

bool StartsUrlAt(std::string_view s, size_t i) {
  return StartsWith(s.substr(i), "http://") ||
         StartsWith(s.substr(i), "https://") ||
         StartsWith(s.substr(i), "www.");
}

}  // namespace

std::string Tokenizer::Sanitize(std::string_view raw) const {
  std::string out;
  out.reserve(raw.size());
  size_t i = 0;
  while (i < raw.size()) {
    char c = raw[i];
    if (options_.strip_urls && StartsUrlAt(raw, i)) {
      i = UrlEnd(raw, i);
      out.push_back(' ');
      continue;
    }
    if (options_.strip_mentions && c == '@' && i + 1 < raw.size() &&
        (IsAsciiAlpha(raw[i + 1]) || raw[i + 1] == '_')) {
      ++i;
      while (i < raw.size() &&
             (IsAsciiAlpha(raw[i]) || IsAsciiDigit(raw[i]) || raw[i] == '_')) {
        ++i;
      }
      out.push_back(' ');
      continue;
    }
    if (c == '#' && options_.keep_hashtag_words) {
      out.push_back(' ');  // Drop the '#', keep the word that follows.
      ++i;
      continue;
    }
    if (c == '&') {
      // Skip HTML entities like &amp; &lt; &#39; (bounded scan).
      size_t j = i + 1;
      size_t limit = std::min(raw.size(), i + 8);
      while (j < limit && raw[j] != ';' &&
             !std::isspace(static_cast<unsigned char>(raw[j]))) {
        ++j;
      }
      if (j < limit && raw[j] == ';') {
        i = j + 1;
        out.push_back(' ');
        continue;
      }
    }
    out.push_back(c);
    ++i;
  }
  return out;
}

std::vector<std::string> Tokenizer::Tokenize(std::string_view raw) const {
  const std::string cleaned = Sanitize(raw);
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&]() {
    if (current.size() >= options_.min_token_length &&
        current.size() <= options_.max_token_length) {
      if (!options_.drop_pure_numbers ||
          !std::all_of(current.begin(), current.end(),
                       [](char c) { return IsAsciiDigit(c); })) {
        tokens.push_back(current);
      }
    }
    current.clear();
  };
  for (char c : cleaned) {
    if (IsAsciiAlpha(c)) {
      current.push_back(
          c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c);
    } else if (IsAsciiDigit(c)) {
      current.push_back(c);
    } else if (c == '\'') {
      // Drop apostrophes inside words ("don't" -> "dont") so possessives
      // and contractions normalize consistently.
      continue;
    } else {
      flush();
    }
  }
  flush();
  return tokens;
}

}  // namespace crowdex::text
