#ifndef CROWDEX_TEXT_PIPELINE_H_
#define CROWDEX_TEXT_PIPELINE_H_

#include <string>
#include <string_view>
#include <vector>

#include "text/language_id.h"
#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace crowdex::text {

/// The output of text processing: the ordered list of index terms.
struct ProcessedText {
  /// Stemmed, stop-word-free, lowercase terms in document order.
  std::vector<std::string> terms;
  /// Detected language of the raw text.
  Language language = Language::kUnknown;
};

/// Feature toggles for the text pipeline, used by the ablation studies
/// (every switch defaults to the paper's configuration).
struct TextPipelineOptions {
  TokenizerOptions tokenizer;
  /// Apply the Porter stemmer (standard IR preprocessing, Sec. 2.3).
  bool stem = true;
  /// Remove English stop words.
  bool remove_stopwords = true;
};

/// The full "Text Processing" step of the analysis pipeline (Fig. 4):
/// sanitization -> tokenization -> stop-word removal -> stemming, preceded
/// by language identification. Both expertise needs (queries) and resources
/// go through this same pipeline, as the paper analyzes them symmetrically.
class TextPipeline {
 public:
  TextPipeline() = default;
  explicit TextPipeline(TokenizerOptions tokenizer_options)
      : tokenizer_(tokenizer_options) {}
  explicit TextPipeline(TextPipelineOptions options)
      : tokenizer_(options.tokenizer), options_(options) {}

  /// Runs the complete pipeline on `raw`. The language is always detected;
  /// terms are produced regardless of language (callers decide whether to
  /// keep non-English output — the indexing layer drops it).
  ProcessedText Process(std::string_view raw) const;

  /// Like `Process` but skips language identification (used for queries,
  /// which are known to be English expertise needs).
  std::vector<std::string> ProcessTerms(std::string_view raw) const;

  const Tokenizer& tokenizer() const { return tokenizer_; }
  const StopwordFilter& stopwords() const { return stopwords_; }
  const PorterStemmer& stemmer() const { return stemmer_; }
  const LanguageIdentifier& language_identifier() const { return lang_id_; }
  const TextPipelineOptions& options() const { return options_; }

 private:
  Tokenizer tokenizer_;
  TextPipelineOptions options_;
  StopwordFilter stopwords_;
  PorterStemmer stemmer_;
  LanguageIdentifier lang_id_;
};

}  // namespace crowdex::text

#endif  // CROWDEX_TEXT_PIPELINE_H_
