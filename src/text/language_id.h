#ifndef CROWDEX_TEXT_LANGUAGE_ID_H_
#define CROWDEX_TEXT_LANGUAGE_ID_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace crowdex::text {

/// Languages the identifier can distinguish. The paper's pipeline keeps
/// only English resources (~230k of ~330k); everything else is filtered
/// before text processing.
enum class Language {
  kUnknown = 0,
  kEnglish,
  kItalian,
  kSpanish,
  kFrench,
  kGerman,
};

/// Returns the ISO-639-1-style code for `lang` ("en", "it", ...).
std::string_view LanguageCode(Language lang);

/// Normalized character-trigram frequencies keyed by a packed 3-byte code
/// (no per-trigram string allocation on the hot analysis path).
using TrigramCounts = std::unordered_map<uint32_t, double>;

/// The language-identification step of the analysis pipeline (Sec. 2.3).
///
/// Classification combines two deterministic signals:
///  1. the fraction of tokens that are very frequent function words of each
///     candidate language (articles, prepositions, pronouns), and
///  2. cosine similarity between the text's character-trigram frequency
///     vector and per-language profiles built from embedded sample text.
///
/// Short texts are dominated by signal (1), long texts by (2); the blend
/// makes both tweets and article-length pages classify reliably. Texts with
/// no discriminative evidence return `kUnknown`.
class LanguageIdentifier {
 public:
  LanguageIdentifier();

  /// Returns the most likely language of `raw_text`, or `kUnknown` when the
  /// evidence is too weak (score below `min_confidence`).
  Language Identify(std::string_view raw_text) const;

  /// Returns the per-language scores for `raw_text` (useful for tests and
  /// diagnostics). Scores are in [0, 1], higher = more likely.
  std::vector<std::pair<Language, double>> Scores(
      std::string_view raw_text) const;

  /// Minimum winning score below which `Identify` returns kUnknown.
  double min_confidence() const { return min_confidence_; }
  void set_min_confidence(double v) { min_confidence_ = v; }

 private:
  struct Profile {
    Language lang;
    TrigramCounts trigram_freq;  // Normalized.
    double trigram_norm = 0.0;   // Precomputed ||trigram_freq||.
    std::unordered_map<std::string, bool> function_words;
  };

  static Profile BuildProfile(Language lang, std::string_view sample,
                              const std::vector<std::string>& words);

  double ScoreAgainst(const Profile& profile,
                      const std::vector<std::string>& tokens,
                      const TrigramCounts& text_trigrams) const;

  std::vector<Profile> profiles_;
  double min_confidence_ = 0.08;
};

/// Extracts a normalized character-trigram frequency map from `text`
/// (lowercased, punctuation collapsed to spaces, padded with '_').
TrigramCounts TrigramFrequencies(std::string_view text);

}  // namespace crowdex::text

#endif  // CROWDEX_TEXT_LANGUAGE_ID_H_
