#include "text/stopwords.h"

namespace crowdex::text {

const std::vector<std::string>& EnglishStopwords() {
  static const auto* kWords = new std::vector<std::string>{
      "a",       "about",   "above",   "after",   "again",    "against",
      "all",     "am",      "an",      "and",     "any",      "are",
      "arent",   "as",      "at",      "be",      "because",  "been",
      "before",  "being",   "below",   "between", "both",     "but",
      "by",      "can",     "cannot",  "cant",    "could",    "couldnt",
      "did",     "didnt",   "do",      "does",    "doesnt",   "doing",
      "dont",    "down",    "during",  "each",    "few",      "for",
      "from",    "further", "had",     "hadnt",   "has",      "hasnt",
      "have",    "havent",  "having",  "he",      "hed",      "hell",
      "hes",     "her",     "here",    "heres",   "hers",     "herself",
      "him",     "himself", "his",     "how",     "hows",     "i",
      "id",      "ill",     "im",      "ive",     "if",       "in",
      "into",    "is",      "isnt",    "it",      "its",      "itself",
      "just",    "lets",    "me",      "more",    "most",     "mustnt",
      "my",      "myself",  "no",      "nor",     "not",      "of",
      "off",     "on",      "once",    "only",    "or",       "other",
      "ought",   "our",     "ours",    "ourselves", "out",    "over",
      "own",     "same",    "shant",   "she",     "shed",     "shell",
      "shes",    "should",  "shouldnt", "so",     "some",     "such",
      "than",    "that",    "thats",   "the",     "their",    "theirs",
      "them",    "themselves", "then", "there",   "theres",   "these",
      "they",    "theyd",   "theyll",  "theyre",  "theyve",   "this",
      "those",   "through", "to",      "too",     "under",    "until",
      "up",      "very",    "was",     "wasnt",   "we",       "wed",
      "well",    "were",    "werent",  "weve",    "what",     "whats",
      "when",    "whens",   "where",   "wheres",  "which",    "while",
      "who",     "whos",    "whom",    "why",     "whys",     "with",
      "wont",    "would",   "wouldnt", "you",     "youd",     "youll",
      "youre",   "youve",   "your",    "yours",   "yourself", "yourselves",
  };
  return *kWords;
}

StopwordFilter::StopwordFilter() : StopwordFilter(EnglishStopwords()) {}

StopwordFilter::StopwordFilter(const std::vector<std::string>& words)
    : words_(words.begin(), words.end()) {}

bool StopwordFilter::IsStopword(std::string_view token) const {
  return words_.contains(std::string(token));
}

void StopwordFilter::Add(std::string_view word) {
  words_.insert(std::string(word));
}

std::vector<std::string> StopwordFilter::Filter(
    const std::vector<std::string>& tokens) const {
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (const auto& t : tokens) {
    if (!IsStopword(t)) out.push_back(t);
  }
  return out;
}

}  // namespace crowdex::text
