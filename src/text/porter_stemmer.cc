#include "text/porter_stemmer.h"

namespace crowdex::text {

namespace {

// Working state for stemming one word, following Porter's reference
// implementation. `end` is the index of the last character and shrinks as
// suffixes are removed; `j` marks the stem boundary set by EndsWith().
// Signed indices are used throughout because the stem boundary may be -1
// (empty stem), exactly as in the reference code.
class Stemming {
 public:
  explicit Stemming(std::string_view word)
      : b_(word), end_(static_cast<int>(b_.size()) - 1) {}

  std::string Run() {
    if (b_.size() <= 2) return b_;
    Step1a();
    Step1b();
    Step1c();
    Step2();
    Step3();
    Step4();
    Step5();
    return b_.substr(0, static_cast<size_t>(end_) + 1);
  }

 private:
  // True if b_[i] is a consonant. 'y' is a consonant at position 0 and
  // after a vowel.
  bool IsConsonant(int i) const {
    char c = b_[static_cast<size_t>(i)];
    switch (c) {
      case 'a':
      case 'e':
      case 'i':
      case 'o':
      case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !IsConsonant(i - 1);
      default:
        return true;
    }
  }

  // Measure of the stem b_[0..j]: the number of VC sequences.
  int Measure() const {
    int n = 0;
    int i = 0;
    for (;;) {
      if (i > j_) return n;
      if (!IsConsonant(i)) break;
      ++i;
    }
    ++i;
    for (;;) {
      for (;;) {
        if (i > j_) return n;
        if (IsConsonant(i)) break;
        ++i;
      }
      ++i;
      ++n;
      for (;;) {
        if (i > j_) return n;
        if (!IsConsonant(i)) break;
        ++i;
      }
      ++i;
    }
  }

  // True iff the stem b_[0..j] contains a vowel.
  bool VowelInStem() const {
    for (int i = 0; i <= j_; ++i) {
      if (!IsConsonant(i)) return true;
    }
    return false;
  }

  // True iff b_[i-1..i] is a double consonant.
  bool DoubleConsonant(int i) const {
    if (i < 1) return false;
    if (b_[static_cast<size_t>(i)] != b_[static_cast<size_t>(i - 1)]) {
      return false;
    }
    return IsConsonant(i);
  }

  // True iff b_[i-2..i] is consonant-vowel-consonant and the final
  // consonant is not w, x, or y (the *o condition).
  bool CvcAt(int i) const {
    if (i < 2 || !IsConsonant(i) || IsConsonant(i - 1) || !IsConsonant(i - 2)) {
      return false;
    }
    char c = b_[static_cast<size_t>(i)];
    return c != 'w' && c != 'x' && c != 'y';
  }

  // True iff the word (up to end_) ends with `s`; on success sets j_ to the
  // index just before the suffix (may become -1).
  bool EndsWith(std::string_view s) {
    int len = static_cast<int>(s.size());
    if (len > end_ + 1) return false;
    if (b_.compare(static_cast<size_t>(end_ + 1 - len), s.size(), s) != 0) {
      return false;
    }
    j_ = end_ - len;
    return true;
  }

  // Replaces the suffix matched by EndsWith() with `s`.
  void SetTo(std::string_view s) {
    b_.replace(static_cast<size_t>(j_ + 1), static_cast<size_t>(end_ - j_), s);
    end_ = j_ + static_cast<int>(s.size());
  }

  // SetTo(s) if the stem measure is positive.
  void ReplaceIfM0(std::string_view s) {
    if (Measure() > 0) SetTo(s);
  }

  // step1a: plurals. sses->ss, ies->i, ss->ss, s->"".
  void Step1a() {
    if (b_[static_cast<size_t>(end_)] != 's') return;
    if (EndsWith("sses")) {
      end_ -= 2;
    } else if (EndsWith("ies")) {
      SetTo("i");
    } else if (end_ >= 1 && b_[static_cast<size_t>(end_ - 1)] != 's') {
      --end_;
    }
  }

  // step1b: -ed and -ing.
  void Step1b() {
    if (EndsWith("eed")) {
      if (Measure() > 0) --end_;
      return;
    }
    bool removed = false;
    if (EndsWith("ed")) {
      if (VowelInStem()) {
        end_ = j_;
        removed = true;
      }
    } else if (EndsWith("ing")) {
      if (VowelInStem()) {
        end_ = j_;
        removed = true;
      }
    }
    if (!removed) return;
    if (EndsWith("at")) {
      SetTo("ate");
    } else if (EndsWith("bl")) {
      SetTo("ble");
    } else if (EndsWith("iz")) {
      SetTo("ize");
    } else if (DoubleConsonant(end_)) {
      char c = b_[static_cast<size_t>(end_)];
      if (c != 'l' && c != 's' && c != 'z') --end_;
    } else {
      j_ = end_;  // Measure() over the whole remaining word.
      if (Measure() == 1 && CvcAt(end_)) {
        b_.resize(static_cast<size_t>(end_) + 1);
        b_.push_back('e');
        ++end_;
      }
    }
  }

  // step1c: y -> i when another vowel exists in the stem.
  void Step1c() {
    if (EndsWith("y") && VowelInStem()) {
      b_[static_cast<size_t>(end_)] = 'i';
    }
  }

  // step2: double/triple suffixes mapped to simpler ones (m > 0).
  void Step2() {
    if (end_ < 2) return;
    switch (b_[static_cast<size_t>(end_ - 1)]) {
      case 'a':
        if (EndsWith("ational")) { ReplaceIfM0("ate"); break; }
        if (EndsWith("tional")) { ReplaceIfM0("tion"); break; }
        break;
      case 'c':
        if (EndsWith("enci")) { ReplaceIfM0("ence"); break; }
        if (EndsWith("anci")) { ReplaceIfM0("ance"); break; }
        break;
      case 'e':
        if (EndsWith("izer")) { ReplaceIfM0("ize"); break; }
        break;
      case 'l':
        if (EndsWith("bli")) { ReplaceIfM0("ble"); break; }  // Revised rule.
        if (EndsWith("alli")) { ReplaceIfM0("al"); break; }
        if (EndsWith("entli")) { ReplaceIfM0("ent"); break; }
        if (EndsWith("eli")) { ReplaceIfM0("e"); break; }
        if (EndsWith("ousli")) { ReplaceIfM0("ous"); break; }
        break;
      case 'o':
        if (EndsWith("ization")) { ReplaceIfM0("ize"); break; }
        if (EndsWith("ation")) { ReplaceIfM0("ate"); break; }
        if (EndsWith("ator")) { ReplaceIfM0("ate"); break; }
        break;
      case 's':
        if (EndsWith("alism")) { ReplaceIfM0("al"); break; }
        if (EndsWith("iveness")) { ReplaceIfM0("ive"); break; }
        if (EndsWith("fulness")) { ReplaceIfM0("ful"); break; }
        if (EndsWith("ousness")) { ReplaceIfM0("ous"); break; }
        break;
      case 't':
        if (EndsWith("aliti")) { ReplaceIfM0("al"); break; }
        if (EndsWith("iviti")) { ReplaceIfM0("ive"); break; }
        if (EndsWith("biliti")) { ReplaceIfM0("ble"); break; }
        break;
      case 'g':
        if (EndsWith("logi")) { ReplaceIfM0("log"); break; }  // Revised rule.
        break;
      default:
        break;
    }
  }

  // step3: -ic-, -full, -ness etc. (m > 0).
  void Step3() {
    switch (b_[static_cast<size_t>(end_)]) {
      case 'e':
        if (EndsWith("icate")) { ReplaceIfM0("ic"); break; }
        if (EndsWith("ative")) { ReplaceIfM0(""); break; }
        if (EndsWith("alize")) { ReplaceIfM0("al"); break; }
        break;
      case 'i':
        if (EndsWith("iciti")) { ReplaceIfM0("ic"); break; }
        break;
      case 'l':
        if (EndsWith("ical")) { ReplaceIfM0("ic"); break; }
        if (EndsWith("ful")) { ReplaceIfM0(""); break; }
        break;
      case 's':
        if (EndsWith("ness")) { ReplaceIfM0(""); break; }
        break;
      default:
        break;
    }
  }

  // step4: strip -ant, -ence etc. when m > 1.
  void Step4() {
    if (end_ < 1) return;
    switch (b_[static_cast<size_t>(end_ - 1)]) {
      case 'a':
        if (EndsWith("al")) break;
        return;
      case 'c':
        if (EndsWith("ance")) break;
        if (EndsWith("ence")) break;
        return;
      case 'e':
        if (EndsWith("er")) break;
        return;
      case 'i':
        if (EndsWith("ic")) break;
        return;
      case 'l':
        if (EndsWith("able")) break;
        if (EndsWith("ible")) break;
        return;
      case 'n':
        if (EndsWith("ant")) break;
        if (EndsWith("ement")) break;
        if (EndsWith("ment")) break;
        if (EndsWith("ent")) break;
        return;
      case 'o':
        if (EndsWith("ion") && j_ >= 0 &&
            (b_[static_cast<size_t>(j_)] == 's' ||
             b_[static_cast<size_t>(j_)] == 't')) {
          break;
        }
        if (EndsWith("ou")) break;
        return;
      case 's':
        if (EndsWith("ism")) break;
        return;
      case 't':
        if (EndsWith("ate")) break;
        if (EndsWith("iti")) break;
        return;
      case 'u':
        if (EndsWith("ous")) break;
        return;
      case 'v':
        if (EndsWith("ive")) break;
        return;
      case 'z':
        if (EndsWith("ize")) break;
        return;
      default:
        return;
    }
    if (Measure() > 1) end_ = j_;
  }

  // step5: remove final -e (m > 1, or m = 1 and not *o), then reduce final
  // double l (m > 1).
  void Step5() {
    j_ = end_;
    if (b_[static_cast<size_t>(end_)] == 'e') {
      int m = Measure();
      if (m > 1 || (m == 1 && !CvcAt(end_ - 1))) --end_;
    }
    if (b_[static_cast<size_t>(end_)] == 'l' && DoubleConsonant(end_)) {
      j_ = end_;
      if (Measure() > 1) --end_;
    }
  }

  std::string b_;
  int end_;    // Index of the last character of the (shrinking) word.
  int j_ = 0;  // Stem boundary set by EndsWith(); may be -1 (empty stem).
};

}  // namespace

std::string PorterStemmer::Stem(std::string_view word) const {
  if (word.size() <= 2) return std::string(word);
  return Stemming(word).Run();
}

std::vector<std::string> PorterStemmer::StemAll(
    const std::vector<std::string>& tokens) const {
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (const auto& t : tokens) out.push_back(Stem(t));
  return out;
}

}  // namespace crowdex::text
