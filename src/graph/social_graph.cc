#include "graph/social_graph.h"

#include <algorithm>
#include <unordered_map>

namespace crowdex::graph {

std::string_view NodeKindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kUserProfile:
      return "UserProfile";
    case NodeKind::kResource:
      return "Resource";
    case NodeKind::kResourceContainer:
      return "ResourceContainer";
    case NodeKind::kUrl:
      return "Url";
  }
  return "Unknown";
}

std::string_view EdgeKindName(EdgeKind kind) {
  switch (kind) {
    case EdgeKind::kOwns:
      return "owns";
    case EdgeKind::kCreates:
      return "creates";
    case EdgeKind::kAnnotates:
      return "annotates";
    case EdgeKind::kRelatesTo:
      return "relatesTo";
    case EdgeKind::kFollows:
      return "follows";
    case EdgeKind::kContains:
      return "contains";
    case EdgeKind::kLinksTo:
      return "linksTo";
  }
  return "unknown";
}

bool EdgeAllowed(EdgeKind kind, NodeKind from, NodeKind to) {
  switch (kind) {
    case EdgeKind::kOwns:
    case EdgeKind::kCreates:
    case EdgeKind::kAnnotates:
      return from == NodeKind::kUserProfile && to == NodeKind::kResource;
    case EdgeKind::kRelatesTo:
      return from == NodeKind::kUserProfile &&
             to == NodeKind::kResourceContainer;
    case EdgeKind::kFollows:
      return from == NodeKind::kUserProfile && to == NodeKind::kUserProfile;
    case EdgeKind::kContains:
      return from == NodeKind::kResourceContainer && to == NodeKind::kResource;
    case EdgeKind::kLinksTo:
      return (from == NodeKind::kUserProfile || from == NodeKind::kResource ||
              from == NodeKind::kResourceContainer) &&
             to == NodeKind::kUrl;
  }
  return false;
}

NodeId SocialGraph::AddNode(NodeKind kind, std::string label) {
  NodeId id = static_cast<NodeId>(kinds_.size());
  kinds_.push_back(kind);
  labels_.push_back(std::move(label));
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

Status SocialGraph::AddEdge(NodeId from, NodeId to, EdgeKind kind) {
  if (!Contains(from) || !Contains(to)) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (from == to) {
    return Status::InvalidArgument("self edges are not allowed");
  }
  if (!EdgeAllowed(kind, kinds_[from], kinds_[to])) {
    return Status::InvalidArgument(
        std::string(EdgeKindName(kind)) + " edge not allowed from " +
        std::string(NodeKindName(kinds_[from])) + " to " +
        std::string(NodeKindName(kinds_[to])));
  }
  if (HasEdge(from, to, kind)) {
    return Status::AlreadyExists("duplicate edge");
  }
  out_[from].push_back({kind, to});
  in_[to].push_back({kind, from});
  ++edge_count_;
  return Status::Ok();
}

std::vector<NodeId> SocialGraph::OutNeighbors(NodeId node,
                                              EdgeKind kind) const {
  std::vector<NodeId> result;
  if (!Contains(node)) return result;
  for (const Edge& e : out_[node]) {
    if (e.kind == kind) result.push_back(e.other);
  }
  return result;
}

std::vector<NodeId> SocialGraph::InNeighbors(NodeId node,
                                             EdgeKind kind) const {
  std::vector<NodeId> result;
  if (!Contains(node)) return result;
  for (const Edge& e : in_[node]) {
    if (e.kind == kind) result.push_back(e.other);
  }
  return result;
}

bool SocialGraph::HasEdge(NodeId from, NodeId to, EdgeKind kind) const {
  if (!Contains(from)) return false;
  for (const Edge& e : out_[from]) {
    if (e.kind == kind && e.other == to) return true;
  }
  return false;
}

bool SocialGraph::AreFriends(NodeId a, NodeId b) const {
  return HasEdge(a, b, EdgeKind::kFollows) && HasEdge(b, a, EdgeKind::kFollows);
}

std::vector<NodeId> SocialGraph::FollowedNonFriends(NodeId user) const {
  std::vector<NodeId> result;
  for (NodeId followed : OutNeighbors(user, EdgeKind::kFollows)) {
    if (!HasEdge(followed, user, EdgeKind::kFollows)) {
      result.push_back(followed);
    }
  }
  return result;
}

std::vector<NodeId> SocialGraph::Friends(NodeId user) const {
  std::vector<NodeId> result;
  for (NodeId followed : OutNeighbors(user, EdgeKind::kFollows)) {
    if (HasEdge(followed, user, EdgeKind::kFollows)) {
      result.push_back(followed);
    }
  }
  return result;
}

std::vector<NodeId> SocialGraph::NodesOfKind(NodeKind kind) const {
  std::vector<NodeId> result;
  for (NodeId i = 0; i < kinds_.size(); ++i) {
    if (kinds_[i] == kind) result.push_back(i);
  }
  return result;
}

Result<std::vector<ResourceAtDistance>> SocialGraph::CollectResources(
    NodeId user, const CollectOptions& options) const {
  if (!Contains(user)) {
    return Status::InvalidArgument("unknown user node");
  }
  if (kinds_[user] != NodeKind::kUserProfile) {
    return Status::InvalidArgument("CollectResources requires a UserProfile");
  }
  if (options.max_distance < 0) {
    return Status::InvalidArgument("max_distance must be >= 0");
  }

  // node -> smallest distance seen.
  std::unordered_map<NodeId, int> best;
  auto note = [&best](NodeId node, int dist) {
    auto [it, inserted] = best.try_emplace(node, dist);
    if (!inserted && dist < it->second) it->second = dist;
  };

  // Distance 0: the candidate profile.
  note(user, 0);

  // The social expansion of `user`: followed users, optionally friends too.
  auto expansion = [this, &options](NodeId profile) {
    std::vector<NodeId> linked = options.include_friends
                                     ? OutNeighbors(profile, EdgeKind::kFollows)
                                     : FollowedNonFriends(profile);
    return linked;
  };

  if (options.max_distance >= 1) {
    // Resources the candidate owns / creates / annotates.
    for (EdgeKind k :
         {EdgeKind::kOwns, EdgeKind::kCreates, EdgeKind::kAnnotates}) {
      for (NodeId r : OutNeighbors(user, k)) note(r, 1);
    }
    // Containers the candidate relates to.
    for (NodeId c : OutNeighbors(user, EdgeKind::kRelatesTo)) note(c, 1);
    // Profiles the candidate follows.
    for (NodeId p : expansion(user)) note(p, 1);
  }

  if (options.max_distance >= 2) {
    // Resources inside containers the candidate relates to.
    for (NodeId c : OutNeighbors(user, EdgeKind::kRelatesTo)) {
      for (NodeId r : OutNeighbors(c, EdgeKind::kContains)) note(r, 2);
    }
    // Resources / containers / follows of followed profiles.
    for (NodeId p : expansion(user)) {
      for (EdgeKind k :
           {EdgeKind::kOwns, EdgeKind::kCreates, EdgeKind::kAnnotates}) {
        for (NodeId r : OutNeighbors(p, k)) note(r, 2);
      }
      for (NodeId c : OutNeighbors(p, EdgeKind::kRelatesTo)) note(c, 2);
      for (NodeId pp : expansion(p)) {
        if (pp != user) note(pp, 2);
      }
    }
  }

  std::vector<ResourceAtDistance> result;
  result.reserve(best.size());
  for (const auto& [node, dist] : best) result.push_back({node, dist});
  std::sort(result.begin(), result.end(),
            [](const ResourceAtDistance& a, const ResourceAtDistance& b) {
              return a.distance != b.distance ? a.distance < b.distance
                                              : a.node < b.node;
            });
  return result;
}

}  // namespace crowdex::graph
