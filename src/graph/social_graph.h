#ifndef CROWDEX_GRAPH_SOCIAL_GRAPH_H_
#define CROWDEX_GRAPH_SOCIAL_GRAPH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace crowdex::graph {

/// Identifier of a node within one `SocialGraph`.
using NodeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNodeId = 0xFFFFFFFFu;

/// Node kinds of the social-graph meta-model (Fig. 2 of the paper).
enum class NodeKind : uint8_t {
  kUserProfile = 0,
  kResource,
  kResourceContainer,
  kUrl,
};

/// Returns a display name for `kind`.
std::string_view NodeKindName(NodeKind kind);

/// Edge kinds of the meta-model. Edges are directed; `kFollows` between two
/// profiles in both directions encodes a *friendship* (bidirectional social
/// relationship), matching the paper's friend-vs-followed distinction.
enum class EdgeKind : uint8_t {
  kOwns = 0,     // UserProfile -> Resource
  kCreates,      // UserProfile -> Resource
  kAnnotates,    // UserProfile -> Resource (like / favorite)
  kRelatesTo,    // UserProfile -> ResourceContainer (group/page membership)
  kFollows,      // UserProfile -> UserProfile
  kContains,     // ResourceContainer -> Resource
  kLinksTo,      // {UserProfile,Resource,ResourceContainer} -> Url
};

/// Returns a display name for `kind`.
std::string_view EdgeKindName(EdgeKind kind);

/// Returns true iff the meta-model permits an edge of `kind` from a node of
/// kind `from` to a node of kind `to` (the `AddEdge` validation rule).
bool EdgeAllowed(EdgeKind kind, NodeKind from, NodeKind to);

/// A textual resource reachable from a candidate profile, tagged with its
/// graph distance per Table 1 of the paper.
struct ResourceAtDistance {
  NodeId node = kInvalidNodeId;
  int distance = 0;

  friend bool operator==(const ResourceAtDistance& a,
                         const ResourceAtDistance& b) = default;
};

/// Options for the Table-1 resource enumeration.
struct CollectOptions {
  /// Maximum graph distance to explore (paper uses 2; see Sec. 2.2 for why
  /// deeper traversal is impractical on real platforms).
  int max_distance = 2;
  /// When false (the paper's default), `kFollows` edges toward *friends*
  /// (mutual follows) are not traversed — only genuinely followed users
  /// contribute distance-1/2 resources. Sec. 3.3.3 evaluates flipping this.
  bool include_friends = false;
};

/// The typed property graph behind the meta-model of Fig. 2.
///
/// The graph stores structure only; textual payloads (profile text, post
/// bodies, container descriptions, page content) are kept by the caller in
/// a document store keyed by `NodeId` (see `platform::ResourceExtractor`).
/// All mutating calls validate against the meta-model and return a
/// `Status`.
class SocialGraph {
 public:
  SocialGraph() = default;

  /// Adds a node of `kind` with an optional human-readable `label`
  /// (user handle, group name, url string).
  NodeId AddNode(NodeKind kind, std::string label = {});

  /// Adds a directed edge; rejects edges the meta-model forbids and
  /// out-of-range endpoints.
  Status AddEdge(NodeId from, NodeId to, EdgeKind kind);

  /// Node accessors.
  size_t node_count() const { return kinds_.size(); }
  size_t edge_count() const { return edge_count_; }
  NodeKind kind(NodeId node) const { return kinds_[node]; }
  const std::string& label(NodeId node) const { return labels_[node]; }
  bool Contains(NodeId node) const { return node < kinds_.size(); }

  /// Returns the targets of out-edges of `kind` from `node`.
  std::vector<NodeId> OutNeighbors(NodeId node, EdgeKind kind) const;

  /// Returns the sources of in-edges of `kind` into `node`.
  std::vector<NodeId> InNeighbors(NodeId node, EdgeKind kind) const;

  /// Returns true iff an edge (from, to, kind) exists.
  bool HasEdge(NodeId from, NodeId to, EdgeKind kind) const;

  /// True iff `a` and `b` follow each other (the paper's *friend*
  /// relationship — a bidirectional bond, e.g. Facebook friendship or
  /// mutual Twitter follows).
  bool AreFriends(NodeId a, NodeId b) const;

  /// Profiles that `user` follows and that do NOT follow back
  /// (thematically-followed accounts, assimilated to topical containers by
  /// the paper).
  std::vector<NodeId> FollowedNonFriends(NodeId user) const;

  /// Profiles sharing a mutual follow with `user`.
  std::vector<NodeId> Friends(NodeId user) const;

  /// All nodes of a given kind.
  std::vector<NodeId> NodesOfKind(NodeKind kind) const;

  /// Enumerates the textual resources reachable from `user` per Table 1:
  ///
  ///   distance 0: the candidate profile itself;
  ///   distance 1: resources the candidate owns/creates/annotates,
  ///               containers the candidate relates to, profiles the
  ///               candidate follows;
  ///   distance 2: resources inside related containers, resources
  ///               owned/created/annotated by followed profiles, containers
  ///               related to followed profiles, profiles followed by
  ///               followed profiles.
  ///
  /// A node reachable at several distances is reported once, at the
  /// smallest one. Results are sorted by (distance, node id) for
  /// determinism. `user` must be a `kUserProfile` node.
  Result<std::vector<ResourceAtDistance>> CollectResources(
      NodeId user, const CollectOptions& options) const;

 private:
  struct Edge {
    EdgeKind kind;
    NodeId other;
  };

  std::vector<NodeKind> kinds_;
  std::vector<std::string> labels_;
  std::vector<std::vector<Edge>> out_;
  std::vector<std::vector<Edge>> in_;
  size_t edge_count_ = 0;
};

}  // namespace crowdex::graph

#endif  // CROWDEX_GRAPH_SOCIAL_GRAPH_H_
