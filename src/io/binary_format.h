#ifndef CROWDEX_IO_BINARY_FORMAT_H_
#define CROWDEX_IO_BINARY_FORMAT_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>

#include "common/status.h"

namespace crowdex::io {

/// Little-endian primitive writer over a `std::ostream`.
///
/// The encoding is deliberately simple and explicit (fixed-width
/// little-endian integers, length-prefixed strings) so that files are
/// portable across platforms and the reader can validate sizes before
/// allocating.
class BinaryWriter {
 public:
  /// `out` must outlive the writer.
  explicit BinaryWriter(std::ostream* out) : out_(out) {}

  void WriteU8(uint8_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteDouble(double v);
  /// Length-prefixed (u32) byte string.
  void WriteString(const std::string& s);

  /// True iff every write so far succeeded.
  bool ok() const { return out_->good(); }

 private:
  std::ostream* out_;
};

/// Little-endian primitive reader over a `std::istream`. All read methods
/// return an error `Status` on truncated or corrupt input instead of
/// returning garbage.
class BinaryReader {
 public:
  /// `in` must outlive the reader. `max_string_bytes` bounds a single
  /// string allocation (corruption guard).
  explicit BinaryReader(std::istream* in, size_t max_string_bytes = 1 << 26)
      : in_(in), max_string_bytes_(max_string_bytes) {}

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<double> ReadDouble();
  Result<std::string> ReadString();

 private:
  Status ReadBytes(void* dst, size_t n);

  std::istream* in_;
  size_t max_string_bytes_;
};

}  // namespace crowdex::io

#endif  // CROWDEX_IO_BINARY_FORMAT_H_
