#include "io/corpus_cache.h"

#include <cmath>
#include <cstring>
#include <fstream>

#include "io/binary_format.h"

namespace crowdex::io {

namespace {

constexpr uint32_t kMagic = 0x43445831;  // "CDX1"
constexpr uint32_t kVersion = 3;

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

Status WriteCorpus(BinaryWriter& w, const platform::AnalyzedCorpus& corpus) {
  w.WriteU8(static_cast<uint8_t>(corpus.platform));
  w.WriteU64(corpus.nodes_with_text);
  w.WriteU64(corpus.english_nodes);
  w.WriteU64(corpus.nodes_with_url);
  w.WriteU32(static_cast<uint32_t>(corpus.nodes.size()));
  for (const platform::AnalyzedNode& node : corpus.nodes) {
    w.WriteU32(node.node);
    w.WriteU8(static_cast<uint8_t>(node.language));
    w.WriteU8(static_cast<uint8_t>((node.has_text ? 1 : 0) |
                                   (node.english ? 2 : 0)));
    w.WriteU32(static_cast<uint32_t>(node.terms.size()));
    for (const auto& term : node.terms) w.WriteString(term);
    w.WriteU32(static_cast<uint32_t>(node.entities.size()));
    for (const auto& e : node.entities) {
      w.WriteU32(e.entity);
      w.WriteU32(e.frequency);
      w.WriteDouble(e.dscore);
    }
  }
  if (!w.ok()) return Status::Internal("write failed");
  return Status::Ok();
}

Result<platform::AnalyzedCorpus> ReadCorpus(BinaryReader& r) {
  platform::AnalyzedCorpus corpus;

  Result<uint8_t> plat = r.ReadU8();
  if (!plat.ok()) return plat.status();
  if (plat.value() >= platform::kNumPlatforms) {
    return Status::InvalidArgument("bad platform id");
  }
  corpus.platform = static_cast<platform::Platform>(plat.value());

  Result<uint64_t> with_text = r.ReadU64();
  if (!with_text.ok()) return with_text.status();
  corpus.nodes_with_text = with_text.value();
  Result<uint64_t> english = r.ReadU64();
  if (!english.ok()) return english.status();
  corpus.english_nodes = english.value();
  Result<uint64_t> with_url = r.ReadU64();
  if (!with_url.ok()) return with_url.status();
  corpus.nodes_with_url = with_url.value();

  Result<uint32_t> count = r.ReadU32();
  if (!count.ok()) return count.status();
  corpus.nodes.reserve(count.value());
  for (uint32_t i = 0; i < count.value(); ++i) {
    platform::AnalyzedNode node;
    Result<uint32_t> id = r.ReadU32();
    if (!id.ok()) return id.status();
    node.node = id.value();
    Result<uint8_t> lang = r.ReadU8();
    if (!lang.ok()) return lang.status();
    node.language = static_cast<text::Language>(lang.value());
    Result<uint8_t> flags = r.ReadU8();
    if (!flags.ok()) return flags.status();
    node.has_text = (flags.value() & 1) != 0;
    node.english = (flags.value() & 2) != 0;

    Result<uint32_t> term_count = r.ReadU32();
    if (!term_count.ok()) return term_count.status();
    node.terms.reserve(term_count.value());
    for (uint32_t t = 0; t < term_count.value(); ++t) {
      Result<std::string> term = r.ReadString();
      if (!term.ok()) return term.status();
      node.terms.push_back(std::move(term).value());
    }

    Result<uint32_t> entity_count = r.ReadU32();
    if (!entity_count.ok()) return entity_count.status();
    node.entities.reserve(entity_count.value());
    for (uint32_t e = 0; e < entity_count.value(); ++e) {
      index::DocEntity de;
      Result<uint32_t> eid = r.ReadU32();
      if (!eid.ok()) return eid.status();
      de.entity = eid.value();
      Result<uint32_t> freq = r.ReadU32();
      if (!freq.ok()) return freq.status();
      de.frequency = freq.value();
      Result<double> dscore = r.ReadDouble();
      if (!dscore.ok()) return dscore.status();
      de.dscore = dscore.value();
      node.entities.push_back(de);
    }
    corpus.nodes.push_back(std::move(node));
  }
  return corpus;
}

}  // namespace

uint64_t HashExtractorOptions(const platform::ExtractorOptions& options) {
  uint64_t h = 0xA5A5A5A5DEADBEEFULL;
  h = Mix(h, options.enrich_urls ? 1 : 0);
  h = Mix(h, options.pipeline.stem ? 1 : 0);
  h = Mix(h, options.pipeline.remove_stopwords ? 1 : 0);
  h = Mix(h, options.pipeline.tokenizer.min_token_length);
  h = Mix(h, options.pipeline.tokenizer.max_token_length);
  h = Mix(h, options.pipeline.tokenizer.strip_urls ? 1 : 0);
  h = Mix(h, options.pipeline.tokenizer.strip_mentions ? 1 : 0);
  h = Mix(h, options.pipeline.tokenizer.keep_hashtag_words ? 1 : 0);
  h = Mix(h, options.pipeline.tokenizer.drop_pure_numbers ? 1 : 0);
  h = Mix(h, static_cast<uint64_t>(
                 std::llround(options.annotator.min_dscore * 1e6)));
  h = Mix(h, static_cast<uint64_t>(
                 std::llround(options.annotator.unambiguous_floor * 1e6)));
  return h;
}

uint64_t DigestAnalyzedCorpora(
    const std::array<platform::AnalyzedCorpus, platform::kNumPlatforms>&
        corpora) {
  uint64_t h = 0xC0FFEE5EED5EEDULL;
  for (const platform::AnalyzedCorpus& corpus : corpora) {
    h = Mix(h, static_cast<uint64_t>(corpus.platform));
    h = Mix(h, corpus.nodes_with_text);
    h = Mix(h, corpus.english_nodes);
    h = Mix(h, corpus.nodes_with_url);
    h = Mix(h, corpus.degraded_nodes);
    h = Mix(h, corpus.nodes.size());
    for (const platform::AnalyzedNode& node : corpus.nodes) {
      h = Mix(h, node.node);
      h = Mix(h, static_cast<uint64_t>(node.language));
      h = Mix(h, (node.has_text ? 1u : 0u) | (node.english ? 2u : 0u));
      h = Mix(h, node.terms.size());
      for (const std::string& term : node.terms) {
        for (char c : term) h = Mix(h, static_cast<unsigned char>(c));
        h = Mix(h, 0xFE);  // term separator
      }
      h = Mix(h, node.entities.size());
      for (const index::DocEntity& e : node.entities) {
        h = Mix(h, e.entity);
        h = Mix(h, e.frequency);
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(e.dscore));
        std::memcpy(&bits, &e.dscore, sizeof(bits));
        h = Mix(h, bits);
      }
    }
  }
  return h;
}

Status SaveAnalyzedCorpora(
    const std::array<platform::AnalyzedCorpus, platform::kNumPlatforms>&
        corpora,
    const CacheFingerprint& fingerprint, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  BinaryWriter w(&out);
  w.WriteU32(kMagic);
  w.WriteU32(kVersion);
  w.WriteU64(fingerprint.world_seed);
  w.WriteDouble(fingerprint.world_scale);
  w.WriteU32(fingerprint.num_candidates);
  w.WriteU64(fingerprint.options_hash);
  w.WriteU64(fingerprint.kb_entities);
  for (const auto& corpus : corpora) {
    CROWDEX_RETURN_IF_ERROR(WriteCorpus(w, corpus));
  }
  out.flush();
  if (!out) return Status::Internal("flush failed for " + path);
  return Status::Ok();
}

Result<std::array<platform::AnalyzedCorpus, platform::kNumPlatforms>>
LoadAnalyzedCorpora(const CacheFingerprint& fingerprint,
                    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("no cache file at " + path);
  }
  BinaryReader r(&in);

  Result<uint32_t> magic = r.ReadU32();
  if (!magic.ok()) return magic.status();
  if (magic.value() != kMagic) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  Result<uint32_t> version = r.ReadU32();
  if (!version.ok()) return version.status();
  if (version.value() != kVersion) {
    return Status::FailedPrecondition("cache version mismatch");
  }

  CacheFingerprint stored;
  Result<uint64_t> seed = r.ReadU64();
  if (!seed.ok()) return seed.status();
  stored.world_seed = seed.value();
  Result<double> scale = r.ReadDouble();
  if (!scale.ok()) return scale.status();
  stored.world_scale = scale.value();
  Result<uint32_t> candidates = r.ReadU32();
  if (!candidates.ok()) return candidates.status();
  stored.num_candidates = candidates.value();
  Result<uint64_t> options_hash = r.ReadU64();
  if (!options_hash.ok()) return options_hash.status();
  stored.options_hash = options_hash.value();
  Result<uint64_t> kb_entities = r.ReadU64();
  if (!kb_entities.ok()) return kb_entities.status();
  stored.kb_entities = kb_entities.value();

  if (!(stored == fingerprint)) {
    return Status::FailedPrecondition(
        "cache fingerprint mismatch (stale cache?)");
  }

  std::array<platform::AnalyzedCorpus, platform::kNumPlatforms> corpora;
  for (int p = 0; p < platform::kNumPlatforms; ++p) {
    Result<platform::AnalyzedCorpus> corpus = ReadCorpus(r);
    if (!corpus.ok()) return corpus.status();
    corpora[p] = std::move(corpus).value();
  }
  return corpora;
}

}  // namespace crowdex::io
