#include "io/shard_manifest.h"

#include <cstdio>
#include <fstream>
#include <limits>

#include "io/binary_format.h"

namespace crowdex::io {

namespace {

/// Ranges must tile a prefix of the global doc axis: ascending bases, no
/// gaps, no overlap. One function serves both the saver (caller bug →
/// `kInvalidArgument`) and the loader (corrupt file → `kDataLoss`).
Status ValidateRanges(const std::vector<ShardRange>& ranges) {
  if (ranges.empty()) {
    return Status::InvalidArgument("shard manifest: no shard ranges");
  }
  uint64_t expected_base = 0;
  for (size_t s = 0; s < ranges.size(); ++s) {
    if (ranges[s].doc_base != expected_base) {
      return Status::InvalidArgument(
          "shard manifest: shard ranges do not tile the doc axis");
    }
    if (ranges[s].doc_count >
        std::numeric_limits<uint64_t>::max() - expected_base) {
      return Status::InvalidArgument("shard manifest: doc range overflows");
    }
    expected_base += ranges[s].doc_count;
  }
  return Status::Ok();
}

}  // namespace

std::string ShardSnapshotFileName(int shard) {
  return "shard_" + std::to_string(shard) + ".snap";
}

Status SaveShardManifest(const ShardManifest& manifest,
                         const std::string& path) {
  CROWDEX_RETURN_IF_ERROR(ValidateRanges(manifest.ranges));

  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return Status::Internal("shard manifest save: cannot open " + tmp_path);
    }
    BinaryWriter writer(&out);
    writer.WriteU32(kShardManifestMagic);
    writer.WriteU32(kShardManifestVersion);
    writer.WriteU64(manifest.fingerprint);
    writer.WriteU64(manifest.epoch);
    writer.WriteU32(static_cast<uint32_t>(manifest.ranges.size()));
    for (const ShardRange& r : manifest.ranges) {
      writer.WriteU64(r.doc_base);
      writer.WriteU64(r.doc_count);
    }
    out.flush();
    if (!writer.ok()) {
      out.close();
      std::remove(tmp_path.c_str());
      return Status::Internal("shard manifest save: write failed for " +
                              tmp_path);
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::Internal("shard manifest save: cannot publish " + path);
  }
  return Status::Ok();
}

Result<ShardManifest> LoadShardManifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("shard manifest not found: " + path);
  }
  BinaryReader reader(&in);

  Result<uint32_t> magic = reader.ReadU32();
  CROWDEX_RETURN_IF_ERROR(magic.status());
  if (magic.value() != kShardManifestMagic) {
    return Status::InvalidArgument("shard manifest: bad magic in " + path);
  }
  Result<uint32_t> version = reader.ReadU32();
  CROWDEX_RETURN_IF_ERROR(version.status());
  if (version.value() != kShardManifestVersion) {
    return Status::InvalidArgument(
        "shard manifest: unsupported format version in " + path);
  }

  ShardManifest manifest;
  Result<uint64_t> fingerprint = reader.ReadU64();
  CROWDEX_RETURN_IF_ERROR(fingerprint.status());
  manifest.fingerprint = fingerprint.value();
  Result<uint64_t> epoch = reader.ReadU64();
  CROWDEX_RETURN_IF_ERROR(epoch.status());
  manifest.epoch = epoch.value();

  Result<uint32_t> count = reader.ReadU32();
  CROWDEX_RETURN_IF_ERROR(count.status());
  // A shard count beyond any plausible deployment means a corrupt length
  // field; refuse before attempting the allocation.
  constexpr uint32_t kMaxShards = 1u << 20;
  if (count.value() == 0 || count.value() > kMaxShards) {
    return Status::DataLoss("shard manifest: implausible shard count in " +
                            path);
  }
  manifest.ranges.reserve(count.value());
  for (uint32_t s = 0; s < count.value(); ++s) {
    ShardRange r;
    Result<uint64_t> base = reader.ReadU64();
    CROWDEX_RETURN_IF_ERROR(base.status());
    r.doc_base = base.value();
    Result<uint64_t> docs = reader.ReadU64();
    CROWDEX_RETURN_IF_ERROR(docs.status());
    r.doc_count = docs.value();
    manifest.ranges.push_back(r);
  }
  Status valid = ValidateRanges(manifest.ranges);
  if (!valid.ok()) {
    return Status::DataLoss("shard manifest rejected: " + valid.message());
  }
  return manifest;
}

}  // namespace crowdex::io
