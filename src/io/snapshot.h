#ifndef CROWDEX_IO_SNAPSHOT_H_
#define CROWDEX_IO_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "index/search_index.h"

namespace crowdex::io {

/// On-disk serving snapshot format (version 1).
///
/// A snapshot persists everything an `ExpertFinder` needs to serve queries
/// — the frozen index (dictionaries, irf/eirf tables, SoA posting arenas)
/// plus the doc→candidate association tables — so a process can cold-start
/// by loading one file instead of re-running crawl→analyze→build→freeze.
///
/// Layout: a fixed header (magic, format version, section count) followed
/// by a section table (id, CRC-32, byte offset, byte size per section) and
/// the section payloads, each starting on a 64-byte boundary. Every
/// section is independently checksummed; bulk arrays are stored as raw
/// little-endian element runs so loading is a handful of block reads
/// straight into the destination arrays — no per-posting decode step.
/// Snapshot bytes are a pure function of the serving state (and the
/// serving state is a pure function of the corpus), so saves are
/// byte-stable across thread counts and repeat runs.
///
/// Error contract of `LoadServingSnapshot`:
///   - missing file                          → `kNotFound`
///   - wrong magic or format version         → `kInvalidArgument`
///   - truncation, checksum mismatch, or any
///     structural inconsistency              → `kDataLoss`
/// Failures never return partially-loaded state.
inline constexpr uint32_t kSnapshotMagic = 0x50535843;  // "CXSP" on disk
inline constexpr uint32_t kSnapshotFormatVersion = 1;

/// Plain-scalar mirror of `core::ExpertFinderConfig`, kept in `io` so the
/// snapshot codec does not depend on the core layer. The core layer
/// converts in both directions (see `ExpertFinder::SaveSnapshot`).
struct SnapshotConfig {
  double alpha = 0.0;
  int32_t window_size = 0;
  double window_fraction = 0.0;
  int32_t max_distance = 0;
  bool include_friends = false;
  uint32_t platforms = 0;
  uint32_t aggregation = 0;
  double distance_weight_max = 0.0;
  double distance_weight_min = 0.0;
  bool compiled_queries = true;
  int32_t query_cache_capacity = 0;
};

/// Borrowed view of one serving state, assembled by the saver. The
/// association tables are CSR over doc ids: doc `d`'s associations are
/// `(assoc_candidate[i], assoc_distance[i])` for `i` in
/// `[assoc_offsets[d], assoc_offsets[d+1])`.
struct ServingSnapshotView {
  uint64_t epoch = 0;
  /// Opaque caller-chosen corpus/configuration digest; the loader rejects
  /// snapshots whose fingerprint does not match its expectation.
  uint64_t fingerprint = 0;
  uint32_t num_candidates = 0;
  SnapshotConfig config;
  index::FrozenIndexView index;
  const std::vector<uint64_t>* assoc_offsets = nullptr;
  const std::vector<uint32_t>* assoc_candidate = nullptr;
  const std::vector<int32_t>* assoc_distance = nullptr;
  const std::vector<uint64_t>* reachable_counts = nullptr;
};

/// Owned form produced by the loader; mirrors `ServingSnapshotView`.
struct ServingSnapshotData {
  uint64_t epoch = 0;
  uint64_t fingerprint = 0;
  uint32_t num_candidates = 0;
  SnapshotConfig config;
  index::FrozenIndexData index;
  std::vector<uint64_t> assoc_offsets;
  std::vector<uint32_t> assoc_candidate;
  std::vector<int32_t> assoc_distance;
  std::vector<uint64_t> reachable_counts;
};

/// Serializes `view` to `path`. The file is written to `path + ".tmp"` and
/// published with an atomic rename, so a concurrent reader (or a crash)
/// never observes a half-written snapshot at `path`.
Status SaveServingSnapshot(const ServingSnapshotView& view,
                           const std::string& path);

/// Reads and verifies a snapshot written by `SaveServingSnapshot`. See the
/// error contract above; on success every section passed its CRC and the
/// cheap structural checks (array sizes, CSR shape, id ranges).
Result<ServingSnapshotData> LoadServingSnapshot(const std::string& path);

}  // namespace crowdex::io

#endif  // CROWDEX_IO_SNAPSHOT_H_
