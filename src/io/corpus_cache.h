#ifndef CROWDEX_IO_CORPUS_CACHE_H_
#define CROWDEX_IO_CORPUS_CACHE_H_

#include <array>
#include <string>

#include "common/status.h"
#include "platform/resource_extractor.h"

namespace crowdex::io {

/// Identifies the world + pipeline configuration a cached analysis belongs
/// to. Loading fails when the fingerprint does not match, so a stale cache
/// can never silently poison an experiment.
struct CacheFingerprint {
  uint64_t world_seed = 0;
  double world_scale = 0.0;
  uint32_t num_candidates = 0;
  /// Hash of the extractor options (URL enrichment, stemming, ...).
  uint64_t options_hash = 0;
  /// Number of entities in the knowledge base the analysis used — the KB
  /// is compiled in, so a rebuilt binary with a grown catalog must not
  /// accept an old cache.
  uint64_t kb_entities = 0;

  friend bool operator==(const CacheFingerprint&,
                         const CacheFingerprint&) = default;
};

/// Computes the options component of the fingerprint. Only pipeline
/// semantics are hashed — execution knobs such as the analysis thread
/// count must NOT enter the fingerprint, because any thread count produces
/// the identical corpus.
uint64_t HashExtractorOptions(const platform::ExtractorOptions& options);

/// Order-sensitive content digest of the full analysis output: every node's
/// id, language, flags, terms, and entities (with the exact bit patterns of
/// the dscore doubles), in (platform, node) order. Two analyses digest
/// equal iff a sequential consumer would see identical corpora — the
/// equality check behind the "parallel analysis is bit-identical" contract.
uint64_t DigestAnalyzedCorpora(
    const std::array<platform::AnalyzedCorpus, platform::kNumPlatforms>&
        corpora);

/// Saves the per-platform analysis output (`corpora`) to `path` under
/// `fingerprint`. The Fig. 4 analysis is by far the most expensive step of
/// an experiment (~1 minute at full scale), and it is a pure function of
/// (world seed, scale, pipeline options) — so benches cache it on disk and
/// reload in seconds.
Status SaveAnalyzedCorpora(
    const std::array<platform::AnalyzedCorpus, platform::kNumPlatforms>&
        corpora,
    const CacheFingerprint& fingerprint, const std::string& path);

/// Loads corpora from `path`, verifying the format and `fingerprint`.
/// Returns NotFound when the file does not exist, FailedPrecondition when
/// the fingerprint mismatches, OutOfRange/InvalidArgument on corruption.
Result<std::array<platform::AnalyzedCorpus, platform::kNumPlatforms>>
LoadAnalyzedCorpora(const CacheFingerprint& fingerprint,
                    const std::string& path);

}  // namespace crowdex::io

#endif  // CROWDEX_IO_CORPUS_CACHE_H_
