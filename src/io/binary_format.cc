#include "io/binary_format.h"

#include <cstring>

namespace crowdex::io {

namespace {

// The file format is explicitly little-endian; on big-endian hosts the
// bytes are reordered. (All current target platforms are little-endian,
// so the fast path is a plain memcpy.)
template <typename T>
void EncodeLe(T v, char* out) {
  for (size_t i = 0; i < sizeof(T); ++i) {
    out[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

template <typename T>
T DecodeLe(const char* in) {
  T v = 0;
  for (size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<T>(static_cast<unsigned char>(in[i])) << (8 * i);
  }
  return v;
}

}  // namespace

void BinaryWriter::WriteU8(uint8_t v) {
  out_->put(static_cast<char>(v));
}

void BinaryWriter::WriteU32(uint32_t v) {
  char buf[4];
  EncodeLe(v, buf);
  out_->write(buf, sizeof(buf));
}

void BinaryWriter::WriteU64(uint64_t v) {
  char buf[8];
  EncodeLe(v, buf);
  out_->write(buf, sizeof(buf));
}

void BinaryWriter::WriteDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void BinaryWriter::WriteString(const std::string& s) {
  WriteU32(static_cast<uint32_t>(s.size()));
  out_->write(s.data(), static_cast<std::streamsize>(s.size()));
}

Status BinaryReader::ReadBytes(void* dst, size_t n) {
  in_->read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
  if (static_cast<size_t>(in_->gcount()) != n) {
    return Status::OutOfRange("truncated input");
  }
  return Status::Ok();
}

Result<uint8_t> BinaryReader::ReadU8() {
  char b;
  CROWDEX_RETURN_IF_ERROR(ReadBytes(&b, 1));
  return static_cast<uint8_t>(b);
}

Result<uint32_t> BinaryReader::ReadU32() {
  char buf[4];
  CROWDEX_RETURN_IF_ERROR(ReadBytes(buf, sizeof(buf)));
  return DecodeLe<uint32_t>(buf);
}

Result<uint64_t> BinaryReader::ReadU64() {
  char buf[8];
  CROWDEX_RETURN_IF_ERROR(ReadBytes(buf, sizeof(buf)));
  return DecodeLe<uint64_t>(buf);
}

Result<double> BinaryReader::ReadDouble() {
  Result<uint64_t> bits = ReadU64();
  if (!bits.ok()) return bits.status();
  double v;
  uint64_t raw = bits.value();
  std::memcpy(&v, &raw, sizeof(v));
  return v;
}

Result<std::string> BinaryReader::ReadString() {
  Result<uint32_t> len = ReadU32();
  if (!len.ok()) return len.status();
  if (len.value() > max_string_bytes_) {
    return Status::OutOfRange("string length " + std::to_string(len.value()) +
                              " exceeds limit");
  }
  std::string s(len.value(), '\0');
  CROWDEX_RETURN_IF_ERROR(ReadBytes(s.data(), s.size()));
  return s;
}

}  // namespace crowdex::io
