#include "io/snapshot.h"

#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string_view>
#include <type_traits>

namespace crowdex::io {

namespace {

// Section ids of format version 1. The reader ignores unknown ids so a
// later minor revision may append sections without breaking old readers;
// removing or reshaping one of these requires a format version bump.
enum SectionId : uint32_t {
  kMeta = 1,
  kDocs = 2,
  kTermDict = 3,
  kTermArena = 4,
  kEntityDict = 5,
  kEntityArena = 6,
  kAssociations = 7,
};
constexpr uint32_t kRequiredSections[] = {
    kMeta, kDocs, kTermDict, kTermArena, kEntityDict, kEntityArena,
    kAssociations};

constexpr size_t kHeaderBytes = 16;         // magic, version, count, reserved
constexpr size_t kTableEntryBytes = 24;     // id, crc, offset, size
constexpr size_t kSectionAlignment = 64;
constexpr uint32_t kMaxSections = 1024;

template <typename T>
void EncodeLe(T v, char* out) {
  for (size_t i = 0; i < sizeof(T); ++i) {
    out[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

template <typename T>
T DecodeLe(const char* in) {
  T v = 0;
  for (size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<T>(static_cast<unsigned char>(in[i])) << (8 * i);
  }
  return v;
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

uint32_t Crc32(std::string_view bytes) {
  const uint32_t* table = Crc32Table();
  uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char b : bytes) {
    crc = table[(crc ^ b) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

/// True when raw element runs can be memcpy'd as their on-disk encoding.
template <typename T>
constexpr bool LeMemcpyable() {
  return std::endian::native == std::endian::little && std::is_integral_v<T>;
}

/// One section payload under construction.
class SectionBuf {
 public:
  explicit SectionBuf(uint32_t id) : id_(id) {}

  void PutU8(uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutScalar(v); }
  void PutU64(uint64_t v) { PutScalar(v); }
  void PutDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutScalar(bits);
  }
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    bytes_.append(s.data(), s.size());
  }
  void PutU32Array(const uint32_t* p, size_t n) { PutArray(p, n); }
  void PutU64Array(const uint64_t* p, size_t n) { PutArray(p, n); }
  void PutSizeArray(const size_t* p, size_t n) {
    if constexpr (sizeof(size_t) == sizeof(uint64_t)) {
      PutArray(reinterpret_cast<const uint64_t*>(p), n);
    } else {
      for (size_t i = 0; i < n; ++i) PutU64(p[i]);
    }
  }
  void PutDoubleArray(const double* p, size_t n) {
    if constexpr (std::endian::native == std::endian::little) {
      bytes_.append(reinterpret_cast<const char*>(p), n * sizeof(double));
    } else {
      for (size_t i = 0; i < n; ++i) PutDouble(p[i]);
    }
  }

  uint32_t id() const { return id_; }
  const std::string& bytes() const { return bytes_; }

 private:
  template <typename T>
  void PutScalar(T v) {
    char buf[sizeof(T)];
    EncodeLe(v, buf);
    bytes_.append(buf, sizeof(buf));
  }
  template <typename T>
  void PutArray(const T* p, size_t n) {
    if constexpr (LeMemcpyable<T>()) {
      bytes_.append(reinterpret_cast<const char*>(p), n * sizeof(T));
    } else {
      for (size_t i = 0; i < n; ++i) PutScalar(p[i]);
    }
  }

  uint32_t id_;
  std::string bytes_;
};

/// Bounds-checked cursor over one verified section payload. Every getter
/// reports overruns as `kDataLoss` — past the CRC, a short field means the
/// writer and reader disagree about the format, i.e. corruption.
class SectionCursor {
 public:
  explicit SectionCursor(std::string_view bytes) : bytes_(bytes) {}

  Status GetU8(uint8_t* out) {
    CROWDEX_RETURN_IF_ERROR(Need(1));
    *out = static_cast<uint8_t>(bytes_[pos_]);
    ++pos_;
    return Status::Ok();
  }
  Status GetU32(uint32_t* out) { return GetScalar(out); }
  Status GetU64(uint64_t* out) { return GetScalar(out); }
  Status GetDouble(double* out) {
    uint64_t bits = 0;
    CROWDEX_RETURN_IF_ERROR(GetScalar(&bits));
    std::memcpy(out, &bits, sizeof(*out));
    return Status::Ok();
  }
  Status GetString(std::string* out) {
    uint32_t len = 0;
    CROWDEX_RETURN_IF_ERROR(GetU32(&len));
    CROWDEX_RETURN_IF_ERROR(Need(len));
    out->assign(bytes_.data() + pos_, len);
    pos_ += len;
    return Status::Ok();
  }
  /// Reads a length previously written as U64 and guarantees that `count`
  /// elements of `elem_size` bytes still fit in the section — the
  /// corruption guard that keeps a flipped length byte from turning into
  /// a multi-gigabyte allocation.
  Status GetCount(size_t elem_size, uint64_t* count) {
    CROWDEX_RETURN_IF_ERROR(GetU64(count));
    if (elem_size != 0 && *count > Remaining() / elem_size) {
      return Status::DataLoss("snapshot: array length exceeds section size");
    }
    return Status::Ok();
  }
  Status GetU32Array(size_t n, std::vector<uint32_t>* out) {
    return GetArray(n, out);
  }
  Status GetU64Array(size_t n, std::vector<uint64_t>* out) {
    return GetArray(n, out);
  }
  Status GetSizeArray(size_t n, std::vector<size_t>* out) {
    if constexpr (sizeof(size_t) == sizeof(uint64_t)) {
      return GetArray(n, out);
    } else {
      out->resize(n);
      for (size_t i = 0; i < n; ++i) {
        uint64_t v = 0;
        CROWDEX_RETURN_IF_ERROR(GetU64(&v));
        if (v > std::numeric_limits<size_t>::max()) {
          return Status::DataLoss("snapshot: offset exceeds address space");
        }
        (*out)[i] = static_cast<size_t>(v);
      }
      return Status::Ok();
    }
  }
  Status GetDoubleArray(size_t n, std::vector<double>* out) {
    CROWDEX_RETURN_IF_ERROR(Need(n * sizeof(double)));
    out->resize(n);
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(out->data(), bytes_.data() + pos_, n * sizeof(double));
      pos_ += n * sizeof(double);
    } else {
      for (size_t i = 0; i < n; ++i) {
        CROWDEX_RETURN_IF_ERROR(GetDouble(&(*out)[i]));
      }
    }
    return Status::Ok();
  }
  /// The payload must be fully consumed — trailing bytes mean the section
  /// size in the table disagrees with the content.
  Status ExpectEnd() const {
    if (pos_ != bytes_.size()) {
      return Status::DataLoss("snapshot: trailing bytes in section");
    }
    return Status::Ok();
  }

 private:
  size_t Remaining() const { return bytes_.size() - pos_; }
  Status Need(size_t n) {
    if (n > Remaining()) {
      return Status::DataLoss("snapshot: section truncated");
    }
    return Status::Ok();
  }
  template <typename T>
  Status GetScalar(T* out) {
    CROWDEX_RETURN_IF_ERROR(Need(sizeof(T)));
    *out = DecodeLe<T>(bytes_.data() + pos_);
    pos_ += sizeof(T);
    return Status::Ok();
  }
  template <typename T>
  Status GetArray(size_t n, std::vector<T>* out) {
    CROWDEX_RETURN_IF_ERROR(Need(n * sizeof(T)));
    out->resize(n);
    if constexpr (LeMemcpyable<T>()) {
      std::memcpy(out->data(), bytes_.data() + pos_, n * sizeof(T));
      pos_ += n * sizeof(T);
    } else {
      for (size_t i = 0; i < n; ++i) {
        CROWDEX_RETURN_IF_ERROR(GetScalar(&(*out)[i]));
      }
    }
    return Status::Ok();
  }

  std::string_view bytes_;
  size_t pos_ = 0;
};

SectionBuf BuildMetaSection(const ServingSnapshotView& view) {
  SectionBuf s(kMeta);
  s.PutU64(view.epoch);
  s.PutU64(view.fingerprint);
  s.PutU32(view.num_candidates);
  const SnapshotConfig& c = view.config;
  s.PutDouble(c.alpha);
  s.PutU32(static_cast<uint32_t>(c.window_size));
  s.PutDouble(c.window_fraction);
  s.PutU32(static_cast<uint32_t>(c.max_distance));
  s.PutU8(c.include_friends ? 1 : 0);
  s.PutU8(c.compiled_queries ? 1 : 0);
  s.PutU32(c.platforms);
  s.PutU32(c.aggregation);
  s.PutDouble(c.distance_weight_max);
  s.PutDouble(c.distance_weight_min);
  s.PutU32(static_cast<uint32_t>(c.query_cache_capacity));
  return s;
}

Status ParseMetaSection(std::string_view bytes, ServingSnapshotData* out) {
  SectionCursor c(bytes);
  CROWDEX_RETURN_IF_ERROR(c.GetU64(&out->epoch));
  CROWDEX_RETURN_IF_ERROR(c.GetU64(&out->fingerprint));
  CROWDEX_RETURN_IF_ERROR(c.GetU32(&out->num_candidates));
  SnapshotConfig& cfg = out->config;
  uint32_t u32 = 0;
  uint8_t u8 = 0;
  CROWDEX_RETURN_IF_ERROR(c.GetDouble(&cfg.alpha));
  CROWDEX_RETURN_IF_ERROR(c.GetU32(&u32));
  cfg.window_size = static_cast<int32_t>(u32);
  CROWDEX_RETURN_IF_ERROR(c.GetDouble(&cfg.window_fraction));
  CROWDEX_RETURN_IF_ERROR(c.GetU32(&u32));
  cfg.max_distance = static_cast<int32_t>(u32);
  CROWDEX_RETURN_IF_ERROR(c.GetU8(&u8));
  cfg.include_friends = u8 != 0;
  CROWDEX_RETURN_IF_ERROR(c.GetU8(&u8));
  cfg.compiled_queries = u8 != 0;
  CROWDEX_RETURN_IF_ERROR(c.GetU32(&cfg.platforms));
  CROWDEX_RETURN_IF_ERROR(c.GetU32(&cfg.aggregation));
  CROWDEX_RETURN_IF_ERROR(c.GetDouble(&cfg.distance_weight_max));
  CROWDEX_RETURN_IF_ERROR(c.GetDouble(&cfg.distance_weight_min));
  CROWDEX_RETURN_IF_ERROR(c.GetU32(&u32));
  cfg.query_cache_capacity = static_cast<int32_t>(u32);
  return c.ExpectEnd();
}

}  // namespace

Status SaveServingSnapshot(const ServingSnapshotView& view,
                           const std::string& path) {
  const index::FrozenIndexView& idx = view.index;
  if (idx.external_ids == nullptr || view.assoc_offsets == nullptr ||
      view.assoc_candidate == nullptr || view.assoc_distance == nullptr ||
      view.reachable_counts == nullptr) {
    return Status::InvalidArgument("snapshot save: incomplete view");
  }

  std::vector<SectionBuf> sections;
  sections.reserve(7);
  sections.push_back(BuildMetaSection(view));

  {
    SectionBuf s(kDocs);
    s.PutU64(idx.external_ids->size());
    s.PutU64Array(idx.external_ids->data(), idx.external_ids->size());
    sections.push_back(std::move(s));
  }
  {
    SectionBuf s(kTermDict);
    s.PutU64(idx.terms.size());
    s.PutDoubleArray(idx.term_irf->data(), idx.term_irf->size());
    s.PutSizeArray(idx.term_offsets->data(), idx.term_offsets->size());
    for (std::string_view term : idx.terms) s.PutString(term);
    sections.push_back(std::move(s));
  }
  {
    SectionBuf s(kTermArena);
    s.PutU64(idx.term_post_doc->size());
    s.PutU32Array(idx.term_post_doc->data(), idx.term_post_doc->size());
    s.PutU32Array(idx.term_post_tf->data(), idx.term_post_tf->size());
    sections.push_back(std::move(s));
  }
  {
    SectionBuf s(kEntityDict);
    s.PutU64(idx.entities.size());
    s.PutU32Array(idx.entities.data(), idx.entities.size());
    s.PutDoubleArray(idx.entity_eirf->data(), idx.entity_eirf->size());
    s.PutU32Array(idx.entity_rf->data(), idx.entity_rf->size());
    s.PutSizeArray(idx.entity_offsets->data(), idx.entity_offsets->size());
    sections.push_back(std::move(s));
  }
  {
    SectionBuf s(kEntityArena);
    s.PutU64(idx.entity_post_doc->size());
    s.PutU32Array(idx.entity_post_doc->data(), idx.entity_post_doc->size());
    s.PutU32Array(idx.entity_post_ef->data(), idx.entity_post_ef->size());
    s.PutDoubleArray(idx.entity_post_we->data(), idx.entity_post_we->size());
    sections.push_back(std::move(s));
  }
  {
    SectionBuf s(kAssociations);
    s.PutU64(view.assoc_offsets->size());
    s.PutU64Array(view.assoc_offsets->data(), view.assoc_offsets->size());
    s.PutU64(view.assoc_candidate->size());
    s.PutU32Array(view.assoc_candidate->data(), view.assoc_candidate->size());
    s.PutU32Array(
        reinterpret_cast<const uint32_t*>(view.assoc_distance->data()),
        view.assoc_distance->size());
    s.PutU64(view.reachable_counts->size());
    s.PutU64Array(view.reachable_counts->data(),
                  view.reachable_counts->size());
    sections.push_back(std::move(s));
  }

  // Lay the sections out 64-byte aligned behind the header + table.
  const size_t table_bytes = kHeaderBytes + kTableEntryBytes * sections.size();
  std::vector<uint64_t> offsets(sections.size());
  uint64_t cursor = table_bytes;
  for (size_t i = 0; i < sections.size(); ++i) {
    cursor = (cursor + kSectionAlignment - 1) / kSectionAlignment *
             kSectionAlignment;
    offsets[i] = cursor;
    cursor += sections[i].bytes().size();
  }

  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return Status::Internal("snapshot save: cannot open " + tmp_path);
    }
    char buf[8];
    auto put_u32 = [&](uint32_t v) {
      EncodeLe(v, buf);
      out.write(buf, 4);
    };
    auto put_u64 = [&](uint64_t v) {
      EncodeLe(v, buf);
      out.write(buf, 8);
    };
    put_u32(kSnapshotMagic);
    put_u32(kSnapshotFormatVersion);
    put_u32(static_cast<uint32_t>(sections.size()));
    put_u32(0);  // reserved
    for (size_t i = 0; i < sections.size(); ++i) {
      put_u32(sections[i].id());
      put_u32(Crc32(sections[i].bytes()));
      put_u64(offsets[i]);
      put_u64(sections[i].bytes().size());
    }
    uint64_t written = table_bytes;
    for (size_t i = 0; i < sections.size(); ++i) {
      for (; written < offsets[i]; ++written) out.put('\0');
      const std::string& bytes = sections[i].bytes();
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      written += bytes.size();
    }
    if (!out.good()) {
      out.close();
      std::remove(tmp_path.c_str());
      return Status::Internal("snapshot save: write failed for " + tmp_path);
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::Internal("snapshot save: cannot publish " + path);
  }
  return Status::Ok();
}

namespace {

struct SectionRecord {
  uint32_t id = 0;
  uint32_t crc = 0;
  uint64_t offset = 0;
  uint64_t size = 0;
};

Status ParseDocsSection(std::string_view bytes, ServingSnapshotData* out) {
  SectionCursor c(bytes);
  uint64_t n = 0;
  CROWDEX_RETURN_IF_ERROR(c.GetCount(sizeof(uint64_t), &n));
  CROWDEX_RETURN_IF_ERROR(c.GetU64Array(n, &out->index.external_ids));
  return c.ExpectEnd();
}

Status ParseTermDictSection(std::string_view bytes, ServingSnapshotData* out) {
  SectionCursor c(bytes);
  uint64_t n = 0;
  CROWDEX_RETURN_IF_ERROR(c.GetCount(sizeof(double), &n));
  CROWDEX_RETURN_IF_ERROR(c.GetDoubleArray(n, &out->index.term_irf));
  CROWDEX_RETURN_IF_ERROR(c.GetSizeArray(n + 1, &out->index.term_offsets));
  out->index.terms.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    CROWDEX_RETURN_IF_ERROR(c.GetString(&out->index.terms[i]));
  }
  return c.ExpectEnd();
}

Status ParseTermArenaSection(std::string_view bytes,
                             ServingSnapshotData* out) {
  SectionCursor c(bytes);
  uint64_t n = 0;
  CROWDEX_RETURN_IF_ERROR(c.GetCount(2 * sizeof(uint32_t), &n));
  CROWDEX_RETURN_IF_ERROR(c.GetU32Array(n, &out->index.term_post_doc));
  CROWDEX_RETURN_IF_ERROR(c.GetU32Array(n, &out->index.term_post_tf));
  return c.ExpectEnd();
}

Status ParseEntityDictSection(std::string_view bytes,
                              ServingSnapshotData* out) {
  SectionCursor c(bytes);
  uint64_t n = 0;
  CROWDEX_RETURN_IF_ERROR(c.GetCount(2 * sizeof(uint32_t) + sizeof(double),
                                     &n));
  CROWDEX_RETURN_IF_ERROR(c.GetU32Array(n, &out->index.entities));
  CROWDEX_RETURN_IF_ERROR(c.GetDoubleArray(n, &out->index.entity_eirf));
  CROWDEX_RETURN_IF_ERROR(c.GetU32Array(n, &out->index.entity_rf));
  CROWDEX_RETURN_IF_ERROR(c.GetSizeArray(n + 1, &out->index.entity_offsets));
  return c.ExpectEnd();
}

Status ParseEntityArenaSection(std::string_view bytes,
                               ServingSnapshotData* out) {
  SectionCursor c(bytes);
  uint64_t n = 0;
  CROWDEX_RETURN_IF_ERROR(
      c.GetCount(2 * sizeof(uint32_t) + sizeof(double), &n));
  CROWDEX_RETURN_IF_ERROR(c.GetU32Array(n, &out->index.entity_post_doc));
  CROWDEX_RETURN_IF_ERROR(c.GetU32Array(n, &out->index.entity_post_ef));
  CROWDEX_RETURN_IF_ERROR(c.GetDoubleArray(n, &out->index.entity_post_we));
  return c.ExpectEnd();
}

Status ParseAssociationsSection(std::string_view bytes,
                                ServingSnapshotData* out) {
  SectionCursor c(bytes);
  uint64_t n = 0;
  CROWDEX_RETURN_IF_ERROR(c.GetCount(sizeof(uint64_t), &n));
  CROWDEX_RETURN_IF_ERROR(c.GetU64Array(n, &out->assoc_offsets));
  CROWDEX_RETURN_IF_ERROR(c.GetCount(2 * sizeof(uint32_t), &n));
  CROWDEX_RETURN_IF_ERROR(c.GetU32Array(n, &out->assoc_candidate));
  std::vector<uint32_t> distances;
  CROWDEX_RETURN_IF_ERROR(c.GetU32Array(n, &distances));
  out->assoc_distance.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    out->assoc_distance[i] = static_cast<int32_t>(distances[i]);
  }
  CROWDEX_RETURN_IF_ERROR(c.GetCount(sizeof(uint64_t), &n));
  CROWDEX_RETURN_IF_ERROR(c.GetU64Array(n, &out->reachable_counts));
  return c.ExpectEnd();
}

/// Cross-section consistency of the association tables: CSR shape over the
/// doc table, candidate / distance ranges against the meta section. The
/// frozen-index arrays get their own validation in
/// `SearchIndex::FromFrozen`.
Status ValidateAssociations(const ServingSnapshotData& data) {
  const size_t num_docs = data.index.external_ids.size();
  if (data.assoc_offsets.size() != num_docs + 1 ||
      data.assoc_offsets.front() != 0 ||
      data.assoc_offsets.back() != data.assoc_candidate.size()) {
    return Status::DataLoss(
        "snapshot: association offsets do not span the doc table");
  }
  for (size_t i = 0; i + 1 < data.assoc_offsets.size(); ++i) {
    if (data.assoc_offsets[i] > data.assoc_offsets[i + 1]) {
      return Status::DataLoss("snapshot: association offsets not monotone");
    }
  }
  for (size_t i = 0; i < data.assoc_candidate.size(); ++i) {
    if (data.assoc_candidate[i] >= data.num_candidates) {
      return Status::DataLoss("snapshot: association candidate out of range");
    }
    if (data.assoc_distance[i] < 0 || data.assoc_distance[i] > 2) {
      return Status::DataLoss("snapshot: association distance out of range");
    }
  }
  if (data.reachable_counts.size() != data.num_candidates) {
    return Status::DataLoss(
        "snapshot: reachable-count table size disagrees with meta");
  }
  return Status::Ok();
}

}  // namespace

Result<ServingSnapshotData> LoadServingSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("snapshot not found: " + path);
  }
  in.seekg(0, std::ios::end);
  const uint64_t file_size = static_cast<uint64_t>(in.tellg());
  in.seekg(0);

  char header[kHeaderBytes];
  in.read(header, sizeof(header));
  if (static_cast<size_t>(in.gcount()) != sizeof(header)) {
    return Status::DataLoss("snapshot: truncated header");
  }
  if (DecodeLe<uint32_t>(header) != kSnapshotMagic) {
    return Status::InvalidArgument("not a crowdex snapshot: " + path);
  }
  const uint32_t version = DecodeLe<uint32_t>(header + 4);
  if (version != kSnapshotFormatVersion) {
    return Status::InvalidArgument(
        "unsupported snapshot format version " + std::to_string(version) +
        " (expected " + std::to_string(kSnapshotFormatVersion) + ")");
  }
  const uint32_t section_count = DecodeLe<uint32_t>(header + 8);
  if (section_count > kMaxSections) {
    return Status::DataLoss("snapshot: implausible section count");
  }

  std::vector<SectionRecord> table(section_count);
  for (SectionRecord& rec : table) {
    char entry[kTableEntryBytes];
    in.read(entry, sizeof(entry));
    if (static_cast<size_t>(in.gcount()) != sizeof(entry)) {
      return Status::DataLoss("snapshot: truncated section table");
    }
    rec.id = DecodeLe<uint32_t>(entry);
    rec.crc = DecodeLe<uint32_t>(entry + 4);
    rec.offset = DecodeLe<uint64_t>(entry + 8);
    rec.size = DecodeLe<uint64_t>(entry + 16);
    if (rec.offset > file_size || rec.size > file_size - rec.offset) {
      return Status::DataLoss("snapshot: section extends past end of file");
    }
  }

  ServingSnapshotData data;
  for (uint32_t required : kRequiredSections) {
    const SectionRecord* found = nullptr;
    for (const SectionRecord& rec : table) {
      if (rec.id != required) continue;
      if (found != nullptr) {
        return Status::DataLoss("snapshot: duplicate section " +
                                std::to_string(required));
      }
      found = &rec;
    }
    if (found == nullptr) {
      return Status::DataLoss("snapshot: missing section " +
                              std::to_string(required));
    }
    std::string payload(found->size, '\0');
    in.seekg(static_cast<std::streamoff>(found->offset));
    in.read(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (static_cast<uint64_t>(in.gcount()) != found->size) {
      return Status::DataLoss("snapshot: truncated section " +
                              std::to_string(required));
    }
    if (Crc32(payload) != found->crc) {
      return Status::DataLoss("snapshot: checksum mismatch in section " +
                              std::to_string(required));
    }
    Status parsed;
    switch (required) {
      case kMeta:
        parsed = ParseMetaSection(payload, &data);
        break;
      case kDocs:
        parsed = ParseDocsSection(payload, &data);
        break;
      case kTermDict:
        parsed = ParseTermDictSection(payload, &data);
        break;
      case kTermArena:
        parsed = ParseTermArenaSection(payload, &data);
        break;
      case kEntityDict:
        parsed = ParseEntityDictSection(payload, &data);
        break;
      case kEntityArena:
        parsed = ParseEntityArenaSection(payload, &data);
        break;
      case kAssociations:
        parsed = ParseAssociationsSection(payload, &data);
        break;
      default:
        parsed = Status::Internal("unreachable");
    }
    CROWDEX_RETURN_IF_ERROR(parsed);
  }
  CROWDEX_RETURN_IF_ERROR(ValidateAssociations(data));
  return data;
}

}  // namespace crowdex::io
