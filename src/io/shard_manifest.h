#ifndef CROWDEX_IO_SHARD_MANIFEST_H_
#define CROWDEX_IO_SHARD_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace crowdex::io {

/// On-disk manifest of a sharded snapshot set (version 1).
///
/// A shard set is a directory holding one serving snapshot per shard
/// (`shard_<s>.snap`, the regular io/snapshot.h format) plus this manifest
/// recording the doc partition — which contiguous global doc range each
/// shard file serves. The manifest is what makes the set a *partition*
/// rather than a pile of independent snapshots: a loader that reassembles
/// the shards without it could not place shard-local doc ids on the global
/// axis, and the merge tier's tie-breaking (global DocId order) depends on
/// those bases.
///
/// Error contract of `LoadShardManifest`, matching the snapshot codec:
/// missing file → `kNotFound`; wrong magic/version → `kInvalidArgument`;
/// truncation or structural inconsistency (overlapping or out-of-order
/// ranges, zero shards) → `kDataLoss`. Failures never return partial data.
inline constexpr uint32_t kShardManifestMagic = 0x4D535843;  // "CXSM"
inline constexpr uint32_t kShardManifestVersion = 1;

/// One shard's slice of the global doc axis: `[doc_base, doc_base +
/// doc_count)`.
struct ShardRange {
  uint64_t doc_base = 0;
  uint64_t doc_count = 0;

  friend bool operator==(const ShardRange&, const ShardRange&) = default;
};

struct ShardManifest {
  /// Mirrors the fingerprint of every shard snapshot in the set (the set
  /// is saved atomically from one finder, so they are all equal).
  uint64_t fingerprint = 0;
  /// Mirrors the epoch of every shard snapshot in the set.
  uint64_t epoch = 0;
  /// Contiguous, ascending, non-overlapping; `ranges[s]` describes
  /// `shard_<s>.snap`.
  std::vector<ShardRange> ranges;
};

/// File name of the manifest inside a shard-set directory.
inline constexpr const char* kShardManifestFileName = "shards.manifest";

/// File name of shard `s`'s snapshot inside a shard-set directory.
std::string ShardSnapshotFileName(int shard);

/// Serializes `manifest` to `path` (tmp file + atomic rename, like the
/// snapshot codec). `kInvalidArgument` when the ranges are empty,
/// out of order, or overlapping — a malformed partition is a caller bug
/// worth catching before it reaches disk.
Status SaveShardManifest(const ShardManifest& manifest,
                         const std::string& path);

/// Reads and validates a manifest written by `SaveShardManifest`. See the
/// error contract above.
Result<ShardManifest> LoadShardManifest(const std::string& path);

}  // namespace crowdex::io

#endif  // CROWDEX_IO_SHARD_MANIFEST_H_
