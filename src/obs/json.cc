#include "obs/json.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace crowdex::obs {

namespace {

/// Fixed-precision, locale-independent double rendering. Metric values are
/// millisecond timings and counts; six significant decimals round-trip
/// them losslessly enough for dashboards while keeping the byte output
/// stable across runs that produce equal values.
void AppendDouble(std::string* out, double value) {
  if (!std::isfinite(value)) {
    out->append("0");
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out->append(buf);
  // %.6g may emit a bare integer ("5"), which is still valid JSON.
}

void AppendQuoted(std::string* out, const std::string& text) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendUint(std::string* out, uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out->append(buf);
}

void AppendInt(std::string* out, int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  out->append(buf);
}

void AppendHistogram(std::string* out, const HistogramSnapshot& snap) {
  out->append("{\"count\": ");
  AppendUint(out, snap.count);
  out->append(", \"sum\": ");
  AppendDouble(out, snap.sum);
  out->append(", \"max\": ");
  AppendDouble(out, snap.max);
  out->append(", \"p50\": ");
  AppendDouble(out, snap.Percentile(0.50));
  out->append(", \"p95\": ");
  AppendDouble(out, snap.Percentile(0.95));
  out->append(", \"p99\": ");
  AppendDouble(out, snap.Percentile(0.99));
  out->append(", \"buckets\": [");
  for (size_t i = 0; i < snap.buckets.size(); ++i) {
    if (i > 0) out->append(", ");
    out->append("{\"le\": ");
    if (i < snap.bounds.size()) {
      AppendDouble(out, snap.bounds[i]);
    } else {
      out->append("\"inf\"");
    }
    out->append(", \"count\": ");
    AppendUint(out, snap.buckets[i]);
    out->push_back('}');
  }
  out->append("]}");
}

}  // namespace

std::string ExportJson(const MetricsRegistry& registry) {
  std::string out;
  out.reserve(4096);
  out.append("{\n  \"schema\": \"crowdex-metrics-v1\",\n  \"counters\": {");
  bool first = true;
  for (const auto& [name, value] : registry.CounterValues()) {
    out.append(first ? "\n" : ",\n");
    first = false;
    out.append("    ");
    AppendQuoted(&out, name);
    out.append(": ");
    AppendUint(&out, value);
  }
  out.append(first ? "},\n" : "\n  },\n");

  out.append("  \"gauges\": {");
  first = true;
  for (const auto& [name, value] : registry.GaugeValues()) {
    out.append(first ? "\n" : ",\n");
    first = false;
    out.append("    ");
    AppendQuoted(&out, name);
    out.append(": ");
    AppendInt(&out, value);
  }
  out.append(first ? "},\n" : "\n  },\n");

  out.append("  \"histograms\": {");
  first = true;
  for (const auto& [name, snap] : registry.HistogramValues()) {
    out.append(first ? "\n" : ",\n");
    first = false;
    out.append("    ");
    AppendQuoted(&out, name);
    out.append(": ");
    AppendHistogram(&out, snap);
  }
  out.append(first ? "}\n" : "\n  }\n");
  out.append("}\n");
  return out;
}

}  // namespace crowdex::obs
