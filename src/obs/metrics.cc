#include "obs/metrics.h"

#include <algorithm>

namespace crowdex::obs {

namespace {

/// Stable per-thread shard index: consecutive thread starts spread across
/// shards round-robin, so a fixed-size pool maps ~1 thread per shard.
size_t ThisThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local const size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kCounterShards;
  return shard;
}

void AtomicMax(std::atomic<double>& target, double value) {
  double cur = target.load(std::memory_order_relaxed);
  while (cur < value &&
         !target.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicAdd(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

void Counter::Increment(uint64_t delta) {
  shards_[ThisThreadShard()].value.fetch_add(delta,
                                             std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Record(double value) {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  size_t bucket = static_cast<size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, value);
  AtomicMax(max_, value);
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  return total;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.buckets.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.buckets[i];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double upper = i < bounds.size() ? bounds[i] : std::max(max, lower);
      const double frac =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lower + (upper - lower) * std::clamp(frac, 0.0, 1.0);
    }
    cumulative += in_bucket;
  }
  return max;
}

std::vector<double> Histogram::DefaultLatencyBoundsMs() {
  return {0.001, 0.0025, 0.005, 0.01,  0.025, 0.05,  0.1,    0.25,
          0.5,   1.0,    2.5,   5.0,   10.0,  25.0,  50.0,   100.0,
          250.0, 500.0,  1000.0, 2500.0, 5000.0, 10000.0, 30000.0, 60000.0};
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (bounds.empty()) bounds = Histogram::DefaultLatencyBoundsMs();
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::Add(MetricsRegistry* metrics, std::string_view name,
                          uint64_t delta) {
  if (metrics != nullptr) metrics->counter(name)->Increment(delta);
}

void MetricsRegistry::Set(MetricsRegistry* metrics, std::string_view name,
                          int64_t value) {
  if (metrics != nullptr) metrics->gauge(name)->Set(value);
}

void MetricsRegistry::Observe(MetricsRegistry* metrics, std::string_view name,
                              double value) {
  if (metrics != nullptr) metrics->histogram(name)->Record(value);
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::CounterValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->Value());
  }
  return out;
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::GaugeValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name, gauge->Value());
  }
  return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
MetricsRegistry::HistogramValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.emplace_back(name, histogram->Snapshot());
  }
  return out;
}

}  // namespace crowdex::obs
