#ifndef CROWDEX_OBS_METRICS_H_
#define CROWDEX_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace crowdex::obs {

/// Number of independent cache-line-padded atomic shards per counter.
/// Instrumented hot paths (per-resource analysis chunks, per-query ranking)
/// increment from many threads at once; sharding keeps those increments
/// from ping-ponging one cache line between cores.
inline constexpr size_t kCounterShards = 8;

/// A named monotonic counter. Increments are wait-free relaxed atomic adds
/// on a thread-local shard; `Value()` sums the shards (reads may race with
/// writers and see a slightly stale total, which is fine for metrics).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t delta = 1);
  uint64_t Value() const;

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  std::array<Shard, kCounterShards> shards_;
};

/// A named instantaneous value (last write wins).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Read-only copy of a histogram's state at one instant.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;
  /// Finite upper bounds, ascending; the implicit overflow bucket holds
  /// everything above the last bound.
  std::vector<double> bounds;
  /// One entry per bound plus the overflow bucket (`bounds.size() + 1`).
  std::vector<uint64_t> buckets;

  /// Percentile estimate by linear interpolation inside the bucket that
  /// contains rank `p * count`. `p` in [0, 1]. Values in the overflow
  /// bucket interpolate up to the observed maximum.
  double Percentile(double p) const;
};

/// A fixed-bucket histogram (latency distributions). Recording is a relaxed
/// atomic increment of one bucket plus CAS-loop updates of the running sum
/// and max — cheap enough for per-query instrumentation.
class Histogram {
 public:
  /// `bounds` are the finite bucket upper bounds, strictly ascending; an
  /// implicit overflow bucket catches everything above the last one.
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(double value);

  uint64_t Count() const;
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Percentile of the recorded distribution (`p` in [0, 1]); 0 when empty.
  double Percentile(double p) const { return Snapshot().Percentile(p); }

  HistogramSnapshot Snapshot() const;

  /// Exponential bounds from 1µs to 60s, in milliseconds — the default for
  /// every latency histogram in the system.
  static std::vector<double> DefaultLatencyBoundsMs();

 private:
  std::vector<double> bounds_;
  /// bounds_.size() + 1 entries (overflow last).
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// The process-wide (or scope-wide) metric namespace: named counters,
/// gauges, and histograms, created on first use and alive as long as the
/// registry. Handle lookup takes a mutex; hot paths should resolve their
/// handles once and increment through the returned pointer, which stays
/// valid for the registry's lifetime.
///
/// Everything that accepts a `MetricsRegistry*` in this codebase treats
/// null as "observability off" and must behave identically either way —
/// metrics observe the pipeline, they never steer it. The null-safe static
/// helpers below keep call sites to one line.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named instrument. Never returns null.
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  /// Created with `DefaultLatencyBoundsMs()` unless `bounds` is non-empty;
  /// bounds are fixed at creation (later calls ignore the argument).
  Histogram* histogram(std::string_view name, std::vector<double> bounds = {});

  /// Null-safe one-liners: no-ops when `metrics` is null.
  static void Add(MetricsRegistry* metrics, std::string_view name,
                  uint64_t delta = 1);
  static void Set(MetricsRegistry* metrics, std::string_view name,
                  int64_t value);
  static void Observe(MetricsRegistry* metrics, std::string_view name,
                      double value);

  /// Sorted-by-name snapshots (the deterministic order of the exporter).
  std::vector<std::pair<std::string, uint64_t>> CounterValues() const;
  std::vector<std::pair<std::string, int64_t>> GaugeValues() const;
  std::vector<std::pair<std::string, HistogramSnapshot>> HistogramValues()
      const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace crowdex::obs

#endif  // CROWDEX_OBS_METRICS_H_
