#ifndef CROWDEX_OBS_SPAN_H_
#define CROWDEX_OBS_SPAN_H_

#include <chrono>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace crowdex::obs {

/// RAII wall-clock timer: measures from construction to destruction (or an
/// explicit `Stop()`) and records the elapsed milliseconds into the named
/// histogram of `metrics`. A null registry still measures (`ElapsedMs()`
/// works) but records nothing — the universal "observability off" contract.
class Span {
 public:
  Span(MetricsRegistry* metrics, std::string_view histogram_name)
      : metrics_(metrics),
        name_(histogram_name),
        start_(std::chrono::steady_clock::now()) {}

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { Stop(); }

  /// Milliseconds since construction.
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  /// Records the elapsed time now instead of at destruction. Idempotent.
  void Stop() {
    if (stopped_) return;
    stopped_ = true;
    MetricsRegistry::Observe(metrics_, name_, ElapsedMs());
  }

 private:
  MetricsRegistry* metrics_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  bool stopped_ = false;
};

/// A `Span` with the pipeline-stage naming convention: timings land in the
/// histogram `stage_ms.<stage>` and each run bumps the `stage_runs.<stage>`
/// counter, so `obs::ExportJson` groups every stage of Fig. 4 the same way.
class StageTimer : public Span {
 public:
  StageTimer(MetricsRegistry* metrics, std::string_view stage)
      : Span(metrics, "stage_ms." + std::string(stage)) {
    MetricsRegistry::Add(metrics, "stage_runs." + std::string(stage));
  }
};

}  // namespace crowdex::obs

#endif  // CROWDEX_OBS_SPAN_H_
