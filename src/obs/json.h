#ifndef CROWDEX_OBS_JSON_H_
#define CROWDEX_OBS_JSON_H_

#include <string>

#include "obs/metrics.h"

namespace crowdex::obs {

/// Serializes the registry to a stable JSON document:
///
/// ```json
/// {
///   "schema": "crowdex-metrics-v1",
///   "counters": {"api.attempts": 42, ...},
///   "gauges": {"index.docs": 1234, ...},
///   "histograms": {
///     "rank.latency_ms": {
///       "count": 30, "sum": 12.5, "max": 3.1,
///       "p50": 0.4, "p95": 1.9, "p99": 3.0,
///       "buckets": [{"le": 0.001, "count": 0}, ..., {"le": "inf", "count": 0}]
///     }
///   }
/// }
/// ```
///
/// Key order is deterministic (sorted by metric name; fixed field order
/// inside each object), so two runs that produce the same metric values
/// produce byte-identical documents — diffable and safe to golden-test.
std::string ExportJson(const MetricsRegistry& registry);

}  // namespace crowdex::obs

#endif  // CROWDEX_OBS_JSON_H_
