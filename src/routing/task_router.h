#ifndef CROWDEX_ROUTING_TASK_ROUTER_H_
#define CROWDEX_ROUTING_TASK_ROUTER_H_

#include <string>
#include <vector>

#include "core/expert_finder.h"

namespace crowdex::routing {

/// A unit of crowd work: a question, recommendation request, or generic
/// task to be answered by a small crowd of experts (Sec. 1 of the paper).
struct Task {
  int id = 0;
  std::string text;
  /// How many experts this task should be routed to.
  int experts_needed = 3;
};

/// One (task -> expert) routing decision.
struct Assignment {
  int task_id = 0;
  int candidate = -1;
  /// The expert's Eq. 3 score for the task.
  double expertise_score = 0.0;
  /// The platform where the expert's evidence for this task is strongest —
  /// the natural channel to contact them on (the paper's second research
  /// question, Sec. 2.1).
  platform::Platform contact_platform = platform::Platform::kFacebook;
};

/// The outcome of routing a batch of tasks.
struct RoutingPlan {
  /// All assignments, grouped by task in input order, best expert first.
  std::vector<Assignment> assignments;
  /// Tasks that received fewer experts than requested
  /// (id -> number actually assigned, possibly 0).
  std::vector<std::pair<int, int>> shortfalls;
  /// Number of tasks assigned to each candidate (index = candidate id).
  std::vector<int> load;
};

/// Routing policy knobs.
struct RouterOptions {
  /// Maximum number of tasks routed to one expert within a batch. Social
  /// contacts answer out of goodwill, not payment — they are "not
  /// available on a continuous and demanding basis" (Sec. 1), so load must
  /// be spread.
  int max_load_per_expert = 3;
  /// Experts scoring below this are never assigned.
  double min_score = 0.0;
};

/// Routes task batches to experts using an `ExpertFinder`, respecting
/// per-expert load limits.
///
/// The algorithm is greedy in task order: each task takes the best-ranked
/// experts that still have capacity. Determinism follows from the finder's
/// deterministic rankings.
class TaskRouter {
 public:
  /// `finder` must outlive the router and should cover all platforms if
  /// `contact_platform` recommendations are wanted.
  TaskRouter(const core::ExpertFinder* finder, RouterOptions options);
  explicit TaskRouter(const core::ExpertFinder* finder)
      : TaskRouter(finder, RouterOptions{}) {}

  /// Routes `tasks`. Tasks are processed in input order; an empty result
  /// list for a task is reported in `shortfalls` with count 0.
  RoutingPlan Route(const std::vector<Task>& tasks) const;

  const RouterOptions& options() const { return options_; }

 private:
  /// Picks the contact platform for (task, candidate) by strongest
  /// evidence contribution.
  platform::Platform ContactPlatform(const std::string& task_text,
                                     int candidate) const;

  const core::ExpertFinder* finder_;
  RouterOptions options_;
};

}  // namespace crowdex::routing

#endif  // CROWDEX_ROUTING_TASK_ROUTER_H_
