#include "routing/task_router.h"

#include <array>

namespace crowdex::routing {

TaskRouter::TaskRouter(const core::ExpertFinder* finder, RouterOptions options)
    : finder_(finder), options_(options) {}

platform::Platform TaskRouter::ContactPlatform(const std::string& task_text,
                                               int candidate) const {
  std::array<double, platform::kNumPlatforms> by_platform{};
  for (const core::ResourceEvidence& ev :
       finder_->Explain(task_text, candidate, /*top_k=*/1000)) {
    by_platform[static_cast<int>(ev.platform)] += ev.contribution;
  }
  int best = 0;
  for (int p = 1; p < platform::kNumPlatforms; ++p) {
    if (by_platform[p] > by_platform[best]) best = p;
  }
  return platform::kAllPlatforms[best];
}

RoutingPlan TaskRouter::Route(const std::vector<Task>& tasks) const {
  RoutingPlan plan;
  // The load vector grows lazily from observed candidate ids, so the
  // router depends only on the public finder interface.
  auto load_of = [&plan](int candidate) -> int& {
    if (static_cast<size_t>(candidate) >= plan.load.size()) {
      plan.load.resize(static_cast<size_t>(candidate) + 1, 0);
    }
    return plan.load[static_cast<size_t>(candidate)];
  };

  for (const Task& task : tasks) {
    core::RankedExperts ranked = finder_->RankText(task.text);
    int assigned = 0;
    for (const core::ExpertScore& expert : ranked.ranking) {
      if (assigned >= task.experts_needed) break;
      if (expert.score <= options_.min_score) break;  // Ranking is sorted.
      int& load = load_of(expert.candidate);
      if (load >= options_.max_load_per_expert) continue;
      ++load;
      Assignment a;
      a.task_id = task.id;
      a.candidate = expert.candidate;
      a.expertise_score = expert.score;
      a.contact_platform = ContactPlatform(task.text, expert.candidate);
      plan.assignments.push_back(a);
      ++assigned;
    }
    if (assigned < task.experts_needed) {
      plan.shortfalls.emplace_back(task.id, assigned);
    }
  }
  return plan;
}

}  // namespace crowdex::routing
